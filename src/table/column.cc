#include "table/column.h"

#include <algorithm>

#include "common/string_util.h"

namespace scorpion {

Status Column::AppendDouble(double v) {
  if (type_ != DataType::kDouble) {
    return Status::TypeError("AppendDouble on a categorical column");
  }
  doubles_.push_back(v);
  return Status::OK();
}

Status Column::AppendString(const std::string& v) {
  if (type_ != DataType::kCategorical) {
    return Status::TypeError("AppendString on a double column");
  }
  auto it = intern_.find(v);
  int32_t code;
  if (it == intern_.end()) {
    code = static_cast<int32_t>(dictionary_.size());
    dictionary_.push_back(v);
    intern_.emplace(v, code);
  } else {
    code = it->second;
  }
  codes_.push_back(code);
  return Status::OK();
}

Status Column::AppendValue(const Value& v) {
  if (std::holds_alternative<double>(v)) {
    if (type_ == DataType::kDouble) return AppendDouble(std::get<double>(v));
    return AppendString(FormatDouble(std::get<double>(v)));
  }
  if (type_ == DataType::kCategorical) {
    return AppendString(std::get<std::string>(v));
  }
  return Status::TypeError("string value appended to a double column");
}

Status Column::SetDoubleData(std::vector<double> values) {
  if (type_ != DataType::kDouble) {
    return Status::TypeError("SetDoubleData on a categorical column");
  }
  doubles_ = std::move(values);
  return Status::OK();
}

Status Column::SetCategoricalData(std::vector<int32_t> codes,
                                  std::vector<std::string> dictionary) {
  if (type_ != DataType::kCategorical) {
    return Status::TypeError("SetCategoricalData on a double column");
  }
  std::unordered_map<std::string, int32_t> intern;
  intern.reserve(dictionary.size());
  for (size_t i = 0; i < dictionary.size(); ++i) {
    auto [it, inserted] = intern.emplace(dictionary[i], static_cast<int32_t>(i));
    if (!inserted) {
      return Status::InvalidArgument("duplicate dictionary entry '" +
                                     dictionary[i] + "'");
    }
  }
  for (int32_t code : codes) {
    if (code < 0 || static_cast<size_t>(code) >= dictionary.size()) {
      return Status::InvalidArgument("categorical code " +
                                     std::to_string(code) +
                                     " outside the dictionary");
    }
  }
  codes_ = std::move(codes);
  dictionary_ = std::move(dictionary);
  intern_ = std::move(intern);
  return Status::OK();
}

Result<Value> Column::GetValue(RowId row) const {
  if (static_cast<size_t>(row) >= size()) {
    return Status::IndexError("row " + std::to_string(row) +
                              " out of range (size " + std::to_string(size()) +
                              ")");
  }
  if (type_ == DataType::kDouble) return Value(doubles_[row]);
  return Value(dictionary_[static_cast<size_t>(codes_[row])]);
}

int32_t Column::CodeOf(const std::string& v) const {
  auto it = intern_.find(v);
  return it == intern_.end() ? -1 : it->second;
}

Result<double> Column::Min() const {
  if (type_ != DataType::kDouble) {
    return Status::TypeError("Min() on a categorical column");
  }
  if (doubles_.empty()) {
    return Status::InvalidArgument("Min() on an empty column");
  }
  return *std::min_element(doubles_.begin(), doubles_.end());
}

Result<double> Column::Max() const {
  if (type_ != DataType::kDouble) {
    return Status::TypeError("Max() on a categorical column");
  }
  if (doubles_.empty()) {
    return Status::InvalidArgument("Max() on an empty column");
  }
  return *std::max_element(doubles_.begin(), doubles_.end());
}

}  // namespace scorpion
