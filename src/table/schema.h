// Schema: ordered list of named, typed fields.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "table/types.h"

namespace scorpion {

/// A single column descriptor.
struct Field {
  std::string name;
  DataType type;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief Ordered, name-indexed collection of fields.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field with the given name, or KeyError.
  Result<int> FieldIndex(const std::string& name) const;

  bool HasField(const std::string& name) const {
    return index_.count(name) > 0;
  }

  bool operator==(const Schema& other) const { return fields_ == other.fields_; }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace scorpion
