// Sorted row-id list algebra. Input groups, predicate matches and partition
// memberships are all RowIdLists; the search algorithms combine them with
// these set operations.
#pragma once

#include "table/types.h"

namespace scorpion {

/// True if `rows` is sorted ascending with no duplicates.
bool IsSortedUnique(const RowIdList& rows);

/// Sorts and deduplicates in place.
void Normalize(RowIdList* rows);

/// Set intersection of two sorted lists.
RowIdList Intersect(const RowIdList& a, const RowIdList& b);

/// Set union of two sorted lists.
RowIdList Union(const RowIdList& a, const RowIdList& b);

/// Elements of `a` not in `b` (both sorted).
RowIdList Difference(const RowIdList& a, const RowIdList& b);

/// True if sorted `a` ⊆ sorted `b`.
bool IsSubset(const RowIdList& a, const RowIdList& b);

/// All row ids [0, n).
RowIdList AllRows(size_t n);

}  // namespace scorpion
