// Selection: the columnar data plane's row-set representation.
//
// A Selection is a set of row ids over a fixed universe [0, universe_size),
// stored as a dense bitmap, a sorted selection vector, or both. The two
// representations trade off differently: bitmaps make the set algebra
// (And/Or/AndNot) word-wise and branch-free and shard trivially by row
// range; sorted vectors drive gather kernels and ordered iteration.
// Conversions are lazy and cached, so a Selection pays for at most one
// conversion in each direction over its lifetime; the element count is
// always known eagerly (vector size or popcount at construction).
//
// The legacy sorted-RowIdList algebra is kept below as the reference
// implementation: boundary APIs (eval metrics, CSV output) still exchange
// RowIdLists, and the property tests in tests/test_selection_vector.cc
// check every Selection operation against it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/atomic_counter.h"
#include "table/types.h"

namespace scorpion {

// --- Sorted row-id list algebra (reference implementation / boundary) -------

/// True if `rows` is sorted ascending with no duplicates.
bool IsSortedUnique(const RowIdList& rows);

/// Sorts and deduplicates in place.
void Normalize(RowIdList* rows);

/// Set intersection of two sorted lists.
RowIdList Intersect(const RowIdList& a, const RowIdList& b);

/// Set union of two sorted lists.
RowIdList Union(const RowIdList& a, const RowIdList& b);

/// Elements of `a` not in `b` (both sorted).
RowIdList Difference(const RowIdList& a, const RowIdList& b);

/// True if sorted `a` ⊆ sorted `b`.
bool IsSubset(const RowIdList& a, const RowIdList& b);

/// All row ids [0, n).
RowIdList AllRows(size_t n);

/// Sets bits [begin, end) of an LSB-first word bitmap — the word-fill fast
/// path the block-pruned filter plane uses to emit whole all-matching
/// blocks without touching column data. `words` must already span `end`
/// bits.
void BitmapSetRange(std::vector<uint64_t>* words, size_t begin, size_t end);

// --- Selection --------------------------------------------------------------

/// Process-wide counters for representation conversions, reported by
/// Scorer::stats() so benchmarks can see data-plane behavior. Attribution is
/// process-wide: exact when one scorer is active, an upper bound otherwise.
struct SelectionConversionStats {
  RelaxedCounter bitmap_to_vector;
  RelaxedCounter vector_to_bitmap;
};

SelectionConversionStats& GlobalSelectionConversionStats();

/// \brief Hybrid bitmap / sorted-vector row set over a fixed universe.
///
/// Value semantics; cheap to move. The lazy representation caches are
/// `mutable` and unsynchronized: materialize (rows()/bitmap(), or
/// MaterializeAll()) before sharing one instance across threads that may
/// trigger the missing form. Every producer in the hot path (the filter
/// kernels, the vector-vector algebra) returns fully usable forms, so in
/// practice conversions only happen at representation seams.
class Selection {
 public:
  /// The empty selection over an empty universe.
  Selection() = default;

  static Selection Empty(size_t universe);
  static Selection All(size_t universe);
  static Selection Single(RowId row, size_t universe);

  /// Wraps a sorted, duplicate-free row list (checked in debug builds).
  static Selection FromSorted(RowIdList rows, size_t universe);

  /// Normalizes (sorts + dedups) and wraps an arbitrary row list.
  static Selection FromUnsorted(RowIdList rows, size_t universe);

  /// Wraps an LSB-first word bitmap of ceil(universe/64) words; bits at or
  /// beyond `universe` must be zero. The count is computed eagerly.
  static Selection FromBitmap(std::vector<uint64_t> words, size_t universe);

  /// Same, for producers that already know the popcount (filter kernels).
  static Selection FromBitmapCounted(std::vector<uint64_t> words,
                                     size_t universe, size_t count);

  size_t universe_size() const { return universe_; }

  /// Number of selected rows. Always O(1): tracked at construction.
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool IsAll() const { return count_ == universe_; }

  bool Contains(RowId row) const;

  /// Representation queries (for tests and conversion-conscious callers).
  bool has_vector() const { return has_vec_; }
  bool has_bitmap() const { return has_bits_; }

  /// Sorted row ids, materializing the vector form if absent.
  const RowIdList& rows() const;

  /// LSB-first word bitmap, materializing the bitmap form if absent.
  const std::vector<uint64_t>& bitmap() const;

  /// Materializes both forms; call before sharing across threads.
  void MaterializeAll() const {
    rows();
    bitmap();
  }

  // --- Set algebra ----------------------------------------------------------
  // Operands must share a universe. When both operands hold vectors the ops
  // run as linear merges and return vector form; otherwise they run word-wise
  // over bitmaps and return bitmap form.

  Selection And(const Selection& other) const;
  Selection Or(const Selection& other) const;
  /// this \ other.
  Selection AndNot(const Selection& other) const;
  bool IsSubsetOf(const Selection& other) const;

  /// Same universe and same members (representation-agnostic).
  bool operator==(const Selection& other) const;

 private:
  const std::vector<uint64_t>& EnsureBitmap() const;
  const RowIdList& EnsureVector() const;

  size_t universe_ = 0;
  size_t count_ = 0;
  // A default Selection is the empty set with the (empty) vector form.
  mutable bool has_vec_ = true;
  mutable bool has_bits_ = false;
  mutable RowIdList vec_;
  mutable std::vector<uint64_t> bits_;
};

}  // namespace scorpion
