#include "table/schema.h"

namespace scorpion {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (int i = 0; i < static_cast<int>(fields_.size()); ++i) {
    index_.emplace(fields_[i].name, i);
  }
}

Result<int> Schema::FieldIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::KeyError("no field named '" + name + "'");
  }
  return it->second;
}

std::string Schema::ToString() const {
  std::string out = "schema(";
  for (int i = 0; i < num_fields(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += DataTypeToString(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace scorpion
