#include "table/csv.h"

#include <cstdlib>
#include <fstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace scorpion {

namespace {

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

Result<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

Result<Table> BuildFromLines(const std::vector<std::string>& lines,
                             const Schema& schema) {
  const std::vector<std::string> header = Split(lines[0], ',');
  // Map file column order to schema order.
  std::vector<int> file_to_schema(header.size(), -1);
  for (size_t i = 0; i < header.size(); ++i) {
    std::string name = Trim(header[i]);
    if (!schema.HasField(name)) {
      return Status::KeyError("CSV header column '" + name +
                              "' not present in schema");
    }
    SCORPION_ASSIGN_OR_RETURN(file_to_schema[i], schema.FieldIndex(name));
  }

  Table table(schema);
  std::vector<Value> row(schema.num_fields());
  for (size_t li = 1; li < lines.size(); ++li) {
    const std::vector<std::string> cells = Split(lines[li], ',');
    if (cells.size() != header.size()) {
      return Status::IOError("CSV line " + std::to_string(li + 1) + " has " +
                             std::to_string(cells.size()) + " cells, expected " +
                             std::to_string(header.size()));
    }
    for (size_t ci = 0; ci < cells.size(); ++ci) {
      int si = file_to_schema[ci];
      const std::string cell = Trim(cells[ci]);
      if (schema.field(si).type == DataType::kDouble) {
        double v;
        if (!ParseDouble(cell, &v)) {
          return Status::TypeError("CSV line " + std::to_string(li + 1) +
                                   ": '" + cell + "' is not numeric");
        }
        row[si] = v;
      } else {
        row[si] = cell;
      }
    }
    SCORPION_RETURN_NOT_OK(table.AppendRow(row));
  }
  return table;
}

}  // namespace

Result<Table> ReadCsv(const std::string& path, const Schema& schema) {
  SCORPION_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(path));
  if (lines.empty()) return Status::IOError("'" + path + "' is empty");
  return BuildFromLines(lines, schema);
}

Result<Table> ReadCsvInferSchema(const std::string& path) {
  SCORPION_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(path));
  if (lines.size() < 2) {
    return Status::IOError("'" + path + "' needs a header and one data row");
  }
  const std::vector<std::string> header = Split(lines[0], ',');
  const std::vector<std::string> first = Split(lines[1], ',');
  if (header.size() != first.size()) {
    return Status::IOError("header/data arity mismatch in '" + path + "'");
  }
  std::vector<Field> fields;
  for (size_t i = 0; i < header.size(); ++i) {
    double unused;
    DataType type = ParseDouble(Trim(first[i]), &unused)
                        ? DataType::kDouble
                        : DataType::kCategorical;
    fields.push_back({Trim(header[i]), type});
  }
  return BuildFromLines(lines, Schema(std::move(fields)));
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  const Schema& schema = table.schema();
  for (int c = 0; c < schema.num_fields(); ++c) {
    if (c > 0) out << ",";
    out << schema.field(c).name;
  }
  out << "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << ",";
      const Column& col = table.column(c);
      if (col.type() == DataType::kDouble) {
        out << FormatDouble(col.GetDouble(static_cast<RowId>(r)), 12);
      } else {
        out << col.GetString(static_cast<RowId>(r));
      }
    }
    out << "\n";
  }
  if (!out.good()) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

}  // namespace scorpion
