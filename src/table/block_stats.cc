#include "table/block_stats.h"

#include <algorithm>
#include <atomic>

#include "table/table.h"

namespace scorpion {

BlockPruningStats& GlobalBlockPruningStats() {
  static BlockPruningStats stats;
  return stats;
}

namespace {
std::atomic<bool> g_pruning_default{true};
}  // namespace

bool BlockPruningDefault() {
  return g_pruning_default.load(std::memory_order_relaxed);
}

void SetBlockPruningDefault(bool enabled) {
  g_pruning_default.store(enabled, std::memory_order_relaxed);
}

BlockMatch ClassifyRangeBlock(const BlockStat& s, size_t rows_in_block,
                              double lo, double hi, bool hi_inclusive) {
  // All-NaN block: NaN fails neither bound check in the kernels, so every
  // row matches any range.
  if (s.nan_count == rows_in_block) return BlockMatch::kAll;
  // Every non-NaN value inside the clause (NaN rows match anyway). The
  // comparisons are written so a NaN clause bound (which the kernels treat
  // as matching everything) falls through to PARTIAL — conservative.
  if (s.min >= lo && (hi_inclusive ? s.max <= hi : s.max < hi)) {
    return BlockMatch::kAll;
  }
  // No row matches: requires no NaN rows (they would match) and the whole
  // non-NaN value range outside the clause.
  if (s.nan_count == 0 &&
      (s.max < lo || (hi_inclusive ? s.min > hi : s.min >= hi))) {
    return BlockMatch::kNone;
  }
  return BlockMatch::kPartial;
}

BlockMatch ClassifySetBlock(const BlockStat& s, const uint64_t* query_bits,
                            bool exact) {
  uint64_t overlap = 0;
  uint64_t outside = 0;
  for (size_t w = 0; w < kBlockCodeWords; ++w) {
    overlap |= s.code_bits[w] & query_bits[w];
    outside |= s.code_bits[w] & ~query_bits[w];
  }
  // A code present in both block and query sets a common bit even under
  // hashing, so zero overlap proves NONE regardless of exactness.
  if (overlap == 0) return BlockMatch::kNone;
  // ALL needs the block's code set to be a subset of the allowed codes,
  // which only the collision-free (exact) encoding can prove.
  if (exact && outside == 0) return BlockMatch::kAll;
  return BlockMatch::kPartial;
}

TableBlockStats::TableBlockStats(const Table& table)
    : table_(&table), num_rows_(table.num_rows()) {
  num_blocks_ = (num_rows_ + kBlockSize - 1) / kBlockSize;
  columns_.reserve(static_cast<size_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    columns_.push_back(std::make_unique<ColumnEntry>());
  }
}

TableBlockStats::TableBlockStats(const Table& table,
                                 const TableBlockStats& prev)
    : TableBlockStats(table) {
  if (prev.columns_.size() != columns_.size()) return;
  // Only blocks prev's scan covered completely are reusable; its partial
  // tail block describes fewer rows than the block holds now.
  const size_t reusable =
      std::min(prev.num_rows_ / kBlockSize, num_blocks_);
  if (reusable == 0) return;
  for (size_t c = 0; c < columns_.size(); ++c) {
    const ColumnEntry& from = *prev.columns_[c];
    // acquire pairs with the release in BuildColumn: a true load proves the
    // entry's blocks/exact are final and immutable.
    if (!from.built.load(std::memory_order_acquire)) continue;
    ColumnEntry& to = *columns_[c];
    to.blocks.assign(from.blocks.begin(),
                     from.blocks.begin() + static_cast<ptrdiff_t>(reusable));
    to.seeded_blocks = reusable;
  }
}

const std::vector<BlockStat>& TableBlockStats::ForColumn(int col) const {
  ColumnEntry& entry = *columns_[col];
  std::call_once(entry.once, [this, col, &entry] { BuildColumn(col, &entry); });
  return entry.blocks;
}

void TableBlockStats::BuildColumn(int col, ColumnEntry* entry) const {
  // resize (not assign) preserves the seeded prefix copied from the
  // previous generation; new slots default-initialize.
  entry->blocks.resize(num_blocks_);
  const size_t first = entry->seeded_blocks;
  const Column& column = table_->column(col);
  if (column.type() == DataType::kDouble) {
    const double* v = column.doubles().data();
    for (size_t b = first; b < num_blocks_; ++b) {
      BlockStat& s = entry->blocks[b];
      const size_t end = block_end(b);
      for (size_t i = block_begin(b); i < end; ++i) {
        const double x = v[i];
        if (x != x) {  // NaN
          ++s.nan_count;
        } else {
          if (x < s.min) s.min = x;
          if (x > s.max) s.max = x;
        }
      }
    }
  } else {
    // Codes are always < cardinality, so when the cardinality fits the
    // bitset the `& (kBlockCodeBits - 1)` hash is the identity and the
    // bitset is exact. Recomputed from the *current* cardinality even for
    // seeded entries: appends can grow the dictionary past the bitset, and
    // the hash rule itself is cardinality-independent, so seeded bits stay
    // valid while `exact` may flip off.
    entry->exact =
        static_cast<size_t>(column.Cardinality()) <= kBlockCodeBits;
    const int32_t* codes = column.codes().data();
    for (size_t b = first; b < num_blocks_; ++b) {
      BlockStat& s = entry->blocks[b];
      const size_t end = block_end(b);
      for (size_t i = block_begin(b); i < end; ++i) {
        const uint32_t bit =
            static_cast<uint32_t>(codes[i]) & (kBlockCodeBits - 1);
        s.code_bits[bit >> 6] |= uint64_t{1} << (bit & 63);
      }
    }
  }
  entry->built.store(true, std::memory_order_release);
}

void BlockStatsCache::Reset() {
  MutexLock lock(mu_);
  fast_.store(nullptr, std::memory_order_release);
  stats_.reset();
  prev_.reset();
}

const TableBlockStats* BlockStatsCache::Get(const Table& table) const {
  const TableBlockStats* fast = fast_.load(std::memory_order_acquire);
  if (fast != nullptr && fast->num_rows() == table.num_rows()) return fast;
  MutexLock lock(mu_);
  if (stats_ == nullptr || stats_->num_rows() != table.num_rows()) {
    // Retire — don't free — the superseded generation: a concurrent Get can
    // already have loaded fast_ and be about to compare num_rows() through
    // the raw pointer. An append racing an evaluation violates the Table /
    // BoundPredicate contract anyway, but the likeliest failure mode (one
    // racing rebuild) should be the row-count mismatch here (and the
    // evaluate-after-append abort), not a use-after-free. Row counts only
    // grow, so the retired generation can never satisfy the fast-path
    // comparison again. One generation deep is hardening, not a guarantee:
    // a reader stalled across TWO rebuilds still loses, and retaining every
    // generation would grow without bound under append-heavy loops.
    prev_ = std::move(stats_);
    stats_ = std::make_shared<const TableBlockStats>(table);
  }
  fast_.store(stats_.get(), std::memory_order_release);
  return stats_.get();
}

void BlockStatsCache::SeedFrom(const BlockStatsCache& prev,
                               const Table& table) {
  std::shared_ptr<const TableBlockStats> prev_stats;
  {
    MutexLock prev_lock(prev.mu_);
    prev_stats = prev.stats_;
  }
  if (prev_stats == nullptr || prev_stats->num_rows() > table.num_rows()) {
    return;
  }
  auto seeded = std::make_shared<const TableBlockStats>(table, *prev_stats);
  MutexLock lock(mu_);
  prev_ = std::move(stats_);
  stats_ = std::move(seeded);
  fast_.store(stats_.get(), std::memory_order_release);
}

}  // namespace scorpion
