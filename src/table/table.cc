#include "table/table.h"

#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace scorpion {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) {
    columns_.emplace_back(f.type);
  }
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (static_cast<int>(values.size()) != schema_.num_fields()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(values.size()) + " != schema arity " +
        std::to_string(schema_.num_fields()));
  }
  for (int i = 0; i < schema_.num_fields(); ++i) {
    SCORPION_RETURN_NOT_OK(columns_[i].AppendValue(values[i]));
  }
  ++num_rows_;
  return Status::OK();
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  SCORPION_ASSIGN_OR_RETURN(int idx, schema_.FieldIndex(name));
  return &columns_[idx];
}

Result<Value> Table::GetValue(RowId row, int col) const {
  if (col < 0 || col >= num_columns()) {
    return Status::IndexError("column " + std::to_string(col) +
                              " out of range");
  }
  return columns_[col].GetValue(row);
}

Result<Table> Table::TakeRows(const RowIdList& rows) const {
  Table out(schema_);
  for (RowId r : rows) {
    if (static_cast<size_t>(r) >= num_rows_) {
      return Status::IndexError("row " + std::to_string(r) + " out of range");
    }
    for (int c = 0; c < num_columns(); ++c) {
      const Column& col = columns_[c];
      if (col.type() == DataType::kDouble) {
        SCORPION_RETURN_NOT_OK(out.columns_[c].AppendDouble(col.GetDouble(r)));
      } else {
        SCORPION_RETURN_NOT_OK(out.columns_[c].AppendString(col.GetString(r)));
      }
    }
    ++out.num_rows_;
  }
  return out;
}

Status Table::FinalizeColumnwiseBuild() {
  if (columns_.empty()) {
    num_rows_ = 0;
    return Status::OK();
  }
  size_t n = columns_[0].size();
  for (const Column& c : columns_) {
    if (c.size() != n) {
      return Status::Internal("column length mismatch after columnwise build");
    }
  }
  num_rows_ = n;
  return Status::OK();
}

Fingerprint TableFingerprint(const Table& table) {
  Fingerprinter fp;
  fp.Str("scorpion.table.v1");
  const Schema& schema = table.schema();
  fp.U64(static_cast<uint64_t>(schema.num_fields()));
  for (const Field& field : schema.fields()) {
    fp.Str(field.name);
    fp.U64(static_cast<uint64_t>(field.type));
  }
  fp.U64(table.num_rows());
  for (int c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    if (col.type() == DataType::kDouble) {
      for (double v : col.doubles()) fp.Double(v);
    } else {
      fp.U64(static_cast<uint64_t>(col.dictionary().size()));
      for (const std::string& s : col.dictionary()) fp.Str(s);
      for (int32_t code : col.codes()) fp.U64(static_cast<uint64_t>(code));
    }
  }
  return fp.Finish();
}

Fingerprint FingerprintCache::Get(const Table& table) const {
  MutexLock lock(mu_);
  if (!valid_ || rows_ != table.num_rows()) {
    fp_ = TableFingerprint(table);
    rows_ = table.num_rows();
    valid_ = true;
  }
  return fp_;
}

void FingerprintCache::Reset() {
  MutexLock lock(mu_);
  valid_ = false;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << ", " << num_rows_ << " rows\n";
  size_t shown = std::min(max_rows, num_rows_);
  for (size_t r = 0; r < shown; ++r) {
    os << "  ";
    for (int c = 0; c < num_columns(); ++c) {
      if (c > 0) os << " | ";
      const Column& col = columns_[c];
      if (col.type() == DataType::kDouble) {
        os << FormatDouble(col.GetDouble(static_cast<RowId>(r)));
      } else {
        os << col.GetString(static_cast<RowId>(r));
      }
    }
    os << "\n";
  }
  if (shown < num_rows_) os << "  ... (" << (num_rows_ - shown) << " more)\n";
  return os.str();
}

}  // namespace scorpion
