#include "table/table.h"

#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace scorpion {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) {
    columns_.emplace_back(f.type);
  }
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (static_cast<int>(values.size()) != schema_.num_fields()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(values.size()) + " != schema arity " +
        std::to_string(schema_.num_fields()));
  }
  for (int i = 0; i < schema_.num_fields(); ++i) {
    SCORPION_RETURN_NOT_OK(columns_[i].AppendValue(values[i]));
  }
  ++num_rows_;
  return Status::OK();
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  SCORPION_ASSIGN_OR_RETURN(int idx, schema_.FieldIndex(name));
  return &columns_[idx];
}

Result<Value> Table::GetValue(RowId row, int col) const {
  if (col < 0 || col >= num_columns()) {
    return Status::IndexError("column " + std::to_string(col) +
                              " out of range");
  }
  return columns_[col].GetValue(row);
}

Result<Table> Table::TakeRows(const RowIdList& rows) const {
  Table out(schema_);
  for (RowId r : rows) {
    if (static_cast<size_t>(r) >= num_rows_) {
      return Status::IndexError("row " + std::to_string(r) + " out of range");
    }
    for (int c = 0; c < num_columns(); ++c) {
      const Column& col = columns_[c];
      if (col.type() == DataType::kDouble) {
        SCORPION_RETURN_NOT_OK(out.columns_[c].AppendDouble(col.GetDouble(r)));
      } else {
        SCORPION_RETURN_NOT_OK(out.columns_[c].AppendString(col.GetString(r)));
      }
    }
    ++out.num_rows_;
  }
  return out;
}

Status Table::FinalizeColumnwiseBuild() {
  if (columns_.empty()) {
    num_rows_ = 0;
    return Status::OK();
  }
  size_t n = columns_[0].size();
  for (const Column& c : columns_) {
    if (c.size() != n) {
      return Status::Internal("column length mismatch after columnwise build");
    }
  }
  num_rows_ = n;
  return Status::OK();
}

namespace {

/// Digest over the parts of the fingerprint that are cheap to recompute
/// whole: schema shape and the current row count.
Fingerprinter TableHeaderHasher(const Table& table) {
  Fingerprinter fp;
  fp.Str("scorpion.table.v2");
  const Schema& schema = table.schema();
  fp.U64(static_cast<uint64_t>(schema.num_fields()));
  for (const Field& field : schema.fields()) {
    fp.Str(field.name);
    fp.U64(static_cast<uint64_t>(field.type));
  }
  fp.U64(table.num_rows());
  return fp;
}

/// Folds the per-column streaming digests (and, for categorical columns,
/// the dictionary size + dictionary digest) into the header hasher.
Fingerprint CombineColumnStates(const Table& table,
                                const std::vector<Fingerprinter>& col_states,
                                const std::vector<Fingerprinter>& dict_states) {
  Fingerprinter fp = TableHeaderHasher(table);
  for (int c = 0; c < table.num_columns(); ++c) {
    const Fingerprint part = col_states[static_cast<size_t>(c)].Finish();
    fp.U64(part.hi);
    fp.U64(part.lo);
    const Column& col = table.column(c);
    if (col.type() != DataType::kDouble) {
      fp.U64(static_cast<uint64_t>(col.dictionary().size()));
      const Fingerprint dict_part =
          dict_states[static_cast<size_t>(c)].Finish();
      fp.U64(dict_part.hi);
      fp.U64(dict_part.lo);
    }
  }
  return fp.Finish();
}

/// Extends each per-column hasher over rows [from, n) and each dictionary
/// hasher over entries past its high-water mark. The incremental cache and
/// the from-scratch TableFingerprint both funnel through this, so the two
/// can never drift apart.
void ExtendColumnStates(const Table& table, size_t from, size_t n,
                        std::vector<Fingerprinter>* col_states,
                        std::vector<Fingerprinter>* dict_states,
                        std::vector<size_t>* dict_hashed) {
  for (int c = 0; c < table.num_columns(); ++c) {
    const size_t ci = static_cast<size_t>(c);
    const Column& col = table.column(c);
    if (col.type() == DataType::kDouble) {
      const std::vector<double>& values = col.doubles();
      for (size_t r = from; r < n; ++r) (*col_states)[ci].Double(values[r]);
    } else {
      const std::vector<int32_t>& codes = col.codes();
      for (size_t r = from; r < n; ++r) {
        (*col_states)[ci].U64(static_cast<uint64_t>(codes[r]));
      }
      const std::vector<std::string>& dict = col.dictionary();
      for (size_t d = (*dict_hashed)[ci]; d < dict.size(); ++d) {
        (*dict_states)[ci].Str(dict[d]);
      }
      (*dict_hashed)[ci] = dict.size();
    }
  }
}

}  // namespace

Fingerprint TableFingerprint(const Table& table) {
  const size_t ncols = static_cast<size_t>(table.num_columns());
  std::vector<Fingerprinter> col_states(ncols);
  std::vector<Fingerprinter> dict_states(ncols);
  std::vector<size_t> dict_hashed(ncols, 0);
  ExtendColumnStates(table, 0, table.num_rows(), &col_states, &dict_states,
                     &dict_hashed);
  return CombineColumnStates(table, col_states, dict_states);
}

Fingerprint FingerprintCache::Get(const Table& table) const {
  MutexLock lock(mu_);
  const size_t ncols = static_cast<size_t>(table.num_columns());
  const size_t n = table.num_rows();
  // The cached states are reusable only if this table extends what they
  // hashed: same column count, at least as many rows, and no dictionary
  // shrank (intern tables only grow under appends).
  bool compatible = valid_ && col_states_.size() == ncols && rows_hashed_ <= n;
  for (size_t c = 0; compatible && c < ncols; ++c) {
    const Column& col = table.column(static_cast<int>(c));
    if (col.type() != DataType::kDouble &&
        dict_hashed_[c] > col.dictionary().size()) {
      compatible = false;
    }
  }
  if (!compatible) {
    col_states_.assign(ncols, Fingerprinter());
    dict_states_.assign(ncols, Fingerprinter());
    dict_hashed_.assign(ncols, 0);
    rows_hashed_ = 0;
    fp_valid_ = false;
    valid_ = true;
  }
  if (fp_valid_ && rows_hashed_ == n) return fp_;
  ExtendColumnStates(table, rows_hashed_, n, &col_states_, &dict_states_,
                     &dict_hashed_);
  rows_hashed_ = n;
  fp_ = CombineColumnStates(table, col_states_, dict_states_);
  fp_valid_ = true;
  return fp_;
}

void FingerprintCache::SeedFrom(const FingerprintCache& prev) {
  MutexLock prev_lock(prev.mu_);
  MutexLock lock(mu_);
  valid_ = prev.valid_;
  rows_hashed_ = prev.rows_hashed_;
  col_states_ = prev.col_states_;
  dict_states_ = prev.dict_states_;
  dict_hashed_ = prev.dict_hashed_;
  fp_valid_ = prev.fp_valid_;
  fp_ = prev.fp_;
}

void FingerprintCache::Reset() {
  MutexLock lock(mu_);
  valid_ = false;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << ", " << num_rows_ << " rows\n";
  size_t shown = std::min(max_rows, num_rows_);
  for (size_t r = 0; r < shown; ++r) {
    os << "  ";
    for (int c = 0; c < num_columns(); ++c) {
      if (c > 0) os << " | ";
      const Column& col = columns_[c];
      if (col.type() == DataType::kDouble) {
        os << FormatDouble(col.GetDouble(static_cast<RowId>(r)));
      } else {
        os << col.GetString(static_cast<RowId>(r));
      }
    }
    os << "\n";
  }
  if (shown < num_rows_) os << "  ... (" << (num_rows_ - shown) << " more)\n";
  return os.str();
}

}  // namespace scorpion
