// CSV import/export. Used by the examples to show end-to-end flows over
// on-disk data, and by tests for round-trip coverage.
#pragma once

#include <string>

#include "common/result.h"
#include "table/table.h"

namespace scorpion {

/// Reads a CSV with a header row into a Table with the given schema.
/// Header names must match schema field names (order-insensitive).
Result<Table> ReadCsv(const std::string& path, const Schema& schema);

/// Reads a CSV with a header row, inferring each column's type from the
/// first data row (numeric parse success -> kDouble, else kCategorical).
Result<Table> ReadCsvInferSchema(const std::string& path);

/// Writes a Table to CSV with a header row.
Status WriteCsv(const Table& table, const std::string& path);

}  // namespace scorpion
