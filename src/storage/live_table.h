// Live tables: sealed-block snapshots plus a mutable append tail.
//
// The rest of the engine treats a Table as immutable once built — every
// cache (zone maps, fingerprints, session match Selections) is keyed on the
// table's identity and row count, and BoundPredicate aborts if the table
// grew under it. LiveTable is the ingest-side answer: rows stream into a
// mutable staging table, and Publish() freezes the current contents as an
// immutable, generation-numbered TableSnapshot that readers pin for the
// whole duration of an Explain/FilterBatch/scatter call. Appends landing
// after the pin are invisible to that reader; the next Publish makes them
// visible to *new* readers atomically (LSM-buffer style, without the
// compaction half: sealed data is never rewritten).
//
// Row space is organised on the same 4096-row grid the zone maps use
// (kBlockSize, table/block_stats.h): the prefix covered by full blocks is
// *sealed* — those blocks' contents can never change under append-only
// ingest — and the remainder is the *tail*. A tail seals implicitly the
// moment enough appends carry it past a block boundary. Sealing is what
// makes incremental derived state sound: a later generation's zone maps
// reuse the earlier generation's sealed-block entries verbatim
// (BlockStatsCache::SeedFrom) and its fingerprint extends the earlier
// streaming hasher states (FingerprintCache::SeedFrom), so publishing after
// a burst of appends costs O(delta), not O(table).
//
// Snapshots are refcounted (shared_ptr): a reader that pinned generation g
// keeps g's frozen table alive even after generations g+1, g+2 publish and
// the LiveTable drops its own reference. Results computed against a pinned
// generation are bit-identical to a from-scratch run over that frozen data
// — the derived-cache seeding above changes cost, never values.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/result.h"
#include "table/block_stats.h"
#include "table/schema.h"
#include "table/table.h"

namespace scorpion {

/// \brief One immutable published generation of a LiveTable.
///
/// Holds a frozen, self-contained copy of the live contents at publish
/// time: same schema, same values, byte-identical column encoding (the
/// categorical dictionaries are copied in interning order, so row codes
/// match the staging table's and sealed-block derived state carries over).
/// All of Table's lazily built caches (zone maps, fingerprint) live on this
/// copy and are seeded from the previous generation at publish, so they
/// only pay for rows past the previous high-water mark.
struct TableSnapshot {
  explicit TableSnapshot(Schema schema) : table(std::move(schema)) {}
  SCORPION_DISALLOW_COPY_AND_ASSIGN(TableSnapshot);

  /// The frozen data. `table.generation()` equals `generation`, so every
  /// BoundPredicate bound against it can detect cross-generation misuse
  /// (Status::FailedPrecondition) instead of scanning the wrong rows.
  Table table;
  /// Monotonic per-LiveTable version, starting at 1 for the first Publish.
  uint64_t generation = 0;
  /// Rows covered by full kBlockSize-row blocks at publish time. These
  /// blocks are sealed: identical in every later generation.
  size_t sealed_rows = 0;
  /// Rows past the sealed prefix (the frozen image of the append tail).
  size_t tail_rows = 0;
};

/// \brief Append-only streaming table with atomically published snapshots.
///
/// Thread-safe: any number of appender and reader threads. Append() and
/// Publish() serialise on an internal mutex; snapshot() hands out the
/// latest published generation under the same mutex (pointer copy only, so
/// readers never wait on an in-progress publish for more than the swap).
/// Typical shape: one writer thread appending + publishing on a cadence,
/// reader threads pinning `snapshot()` once per Explain call.
class LiveTable {
 public:
  explicit LiveTable(Schema schema);
  SCORPION_DISALLOW_COPY_AND_ASSIGN(LiveTable);

  const Schema& schema() const { return schema_; }

  /// Appends one row to the staging tail; `values` must match the schema.
  /// Invisible to readers until the next Publish().
  Status Append(const std::vector<Value>& values);

  /// Total rows appended so far (including unpublished tail rows).
  size_t num_rows() const;

  /// Freezes the current contents as a new generation and publishes it as
  /// the snapshot() result. Derived caches (zone maps, fingerprint hasher
  /// states) are seeded from the previous generation, so the publish and
  /// the first reads against it cost O(rows since last publish). If
  /// nothing was appended since the last Publish, returns the existing
  /// snapshot without minting a new generation.
  Result<std::shared_ptr<const TableSnapshot>> Publish();

  /// Latest published generation, or null before the first Publish().
  /// Callers keep the returned handle for the whole duration of a read;
  /// the generation stays alive (refcounted) even after newer publishes.
  std::shared_ptr<const TableSnapshot> snapshot() const;

  /// Generation number of the latest published snapshot (0 = none yet).
  uint64_t generation() const;

  /// Rows of the staging table covered by full sealed blocks / past them.
  /// num_rows() == sealed_rows() + tail_rows().
  size_t sealed_rows() const;
  size_t tail_rows() const;

 private:
  const Schema schema_;
  mutable Mutex mu_;
  /// Mutable ingest buffer. Never handed out — readers only ever see the
  /// frozen copies in published snapshots.
  Table staging_ SCORPION_GUARDED_BY(mu_);
  uint64_t next_generation_ SCORPION_GUARDED_BY(mu_) = 1;
  std::shared_ptr<const TableSnapshot> published_ SCORPION_GUARDED_BY(mu_);
};

}  // namespace scorpion
