#include "storage/live_table.h"

#include <utility>

#include "common/failpoint.h"
#include "common/macros.h"
#include "table/column.h"
#include "table/types.h"

namespace scorpion {

LiveTable::LiveTable(Schema schema)
    : schema_(schema), staging_(std::move(schema)) {}

Status LiveTable::Append(const std::vector<Value>& values) {
  MutexLock lock(mu_);
  return staging_.AppendRow(values);
}

size_t LiveTable::num_rows() const {
  MutexLock lock(mu_);
  return staging_.num_rows();
}

Result<std::shared_ptr<const TableSnapshot>> LiveTable::Publish() {
  SCORPION_FAILPOINT("storage.live_publish");
  MutexLock lock(mu_);
  const size_t n = staging_.num_rows();
  if (published_ != nullptr && published_->table.num_rows() == n) {
    // Nothing appended since the last publish: the existing generation is
    // already an exact image, so don't mint an identical new one (that
    // would needlessly invalidate readers' generation comparisons).
    return published_;
  }

  // The snapshot's Table must be built at its final address: Table's
  // derived caches (and TableBlockStats' back-pointer) do not survive a
  // move, so seeding before the object settles would be wasted or wrong.
  auto snap = std::make_shared<TableSnapshot>(schema_);

  // Exact encoded copy, column by column. SetCategoricalData restores the
  // dictionary in staging's interning order, so row codes are bytewise
  // identical — the property both fingerprint-state reuse and sealed-block
  // zone-map reuse depend on.
  for (int c = 0; c < staging_.num_columns(); ++c) {
    const Column& src = staging_.column(c);
    Column& dst = snap->table.column(c);
    if (src.type() == DataType::kDouble) {
      SCORPION_RETURN_NOT_OK(dst.SetDoubleData(src.doubles()));
    } else {
      SCORPION_RETURN_NOT_OK(
          dst.SetCategoricalData(src.codes(), src.dictionary()));
    }
  }
  SCORPION_RETURN_NOT_OK(snap->table.FinalizeColumnwiseBuild());

  snap->generation = next_generation_++;
  snap->table.set_generation(snap->generation);
  snap->sealed_rows = (n / kBlockSize) * kBlockSize;
  snap->tail_rows = n - snap->sealed_rows;

  if (published_ != nullptr) {
    // Carry the previous generation's derived state: sealed-block zone
    // maps verbatim, fingerprint hasher states to extend from the old
    // high-water mark. Purely a cost optimisation — the seeded caches
    // produce bit-identical values to a cold build over snap->table.
    snap->table.SeedDerivedCaches(published_->table);
  }

  published_ = std::move(snap);
  return published_;
}

std::shared_ptr<const TableSnapshot> LiveTable::snapshot() const {
  MutexLock lock(mu_);
  return published_;
}

uint64_t LiveTable::generation() const {
  MutexLock lock(mu_);
  return published_ == nullptr ? 0 : published_->generation;
}

size_t LiveTable::sealed_rows() const {
  MutexLock lock(mu_);
  return (staging_.num_rows() / kBlockSize) * kBlockSize;
}

size_t LiveTable::tail_rows() const {
  MutexLock lock(mu_);
  return staging_.num_rows() % kBlockSize;
}

}  // namespace scorpion
