// Expense workload: synthetic stand-in for the FEC 2012 campaign-expense
// dataset (Section 8.1's EXPENSE). Daily disbursement ledger with
// high-cardinality discrete attributes; a handful of outlier days carry
// multi-million-dollar MEDIA BUY payments to one recipient under one filing
// number, so SUM(disb_amt) per day spikes on those days and the expected
// high-c explanation is the recipient/state/filing/description conjunction
// the paper reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "predicate/predicate.h"
#include "query/groupby.h"
#include "table/table.h"

namespace scorpion {

struct ExpenseOptions {
  int num_days = 120;
  /// Typical disbursement rows per day.
  int rows_per_day = 400;
  /// Distinct ordinary recipients (the real dataset has ~18k; 2k keeps the
  /// cardinality profile "hundreds to thousands" while staying laptop-fast).
  int num_recipients = 2000;
  int num_zip_codes = 100;
  /// Days with planted media-buy spikes (paper: 7 outlier days > $10M).
  int num_outlier_days = 7;
  /// Media buys per outlier day.
  int media_buys_per_outlier_day = 6;
  /// Media buy amount range (dollars).
  double media_buy_lo = 1.6e6;
  double media_buy_hi = 3.2e6;
  uint64_t seed = 42;
};

struct ExpenseDataset {
  Table table;
  GroupByQuery query;  // SELECT SUM(disb_amt) ... GROUP BY date
  /// Explanation attributes (everything but date and disb_amt).
  std::vector<std::string> attributes;
  std::vector<std::string> outlier_keys;   // the spike days
  std::vector<std::string> holdout_keys;   // sampled typical days
  /// The planted cause: recipient_nm = 'GMMB INC.' & disb_desc = 'MEDIA BUY'
  /// & recipient_st = 'DC' & file_num = '800316'.
  Predicate expected;
  /// Ground truth per the paper's definition: rows with amount > $1.5M.
  RowIdList ground_truth_rows;

  ExpenseDataset() : table(Schema{}) {}
};

Result<ExpenseDataset> GenerateExpense(const ExpenseOptions& options);

}  // namespace scorpion
