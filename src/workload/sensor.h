// Sensor workload: synthetic stand-in for the Intel Lab dataset
// (Section 8.1's INTEL), with the two failure modes the paper's queries
// target planted into the trace:
//
//  * kDyingSensor — one mote starts emitting > 100C readings partway
//    through the trace; its voltage sits in a narrow low band and its light
//    readings are low, so at high c Scorpion can refine sensorid = k with
//    voltage/light clauses (first INTEL workload).
//  * kLowVoltage — one mote's battery decays below 2.4V, producing
//    90-122C readings whose extremes correlate with a light band
//    (second INTEL workload).
//
// Schema mirrors the paper's readings table: hour (group-by), sensorid,
// voltage, humidity, light, temp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "predicate/predicate.h"
#include "query/groupby.h"
#include "table/table.h"

namespace scorpion {

enum class SensorFailureMode : int {
  kDyingSensor = 0,
  kLowVoltage = 1,
};

struct SensorOptions {
  int num_sensors = 61;
  int num_hours = 36;
  int readings_per_sensor_per_hour = 10;
  SensorFailureMode mode = SensorFailureMode::kDyingSensor;
  /// Mote that fails (paper: 15 for dying, 18 for low voltage).
  int failing_sensor = 15;
  /// Hour at which the failure begins.
  int failure_start_hour = 18;
  uint64_t seed = 42;
};

struct SensorDataset {
  Table table;
  GroupByQuery query;  // SELECT STDDEV(temp) ... GROUP BY hour
  /// Explanation attributes: sensorid, voltage, humidity, light.
  std::vector<std::string> attributes;
  std::vector<std::string> outlier_keys;   // hours >= failure_start_hour
  std::vector<std::string> holdout_keys;   // hours before the failure
  /// The planted root cause as a predicate (sensorid = k).
  Predicate expected;
  /// Ground truth: the failing sensor's anomalous readings.
  RowIdList ground_truth_rows;

  SensorDataset() : table(Schema{}) {}
};

Result<SensorDataset> GenerateSensor(const SensorOptions& options);

}  // namespace scorpion
