// SYNTH: the paper's synthetic ground-truth generator (Section 8.1).
//
// One categorical group attribute Ad (10 groups), one value attribute Av,
// and n continuous dimension attributes A1..An over [0, 100]. Half the
// groups are hold-out groups drawing Av ~ N(10, 10); the other half are
// outlier groups where tuples falling inside a shared random outer
// hyper-cube get Av ~ N((mu+10)/2, 10) and tuples inside the nested inner
// cube get Av ~ N(mu, 10). Cube volumes are chosen so the outer cube holds
// ~25% of a group's tuples and the inner cube ~25% of the outer's.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "predicate/predicate.h"
#include "query/groupby.h"
#include "table/table.h"

namespace scorpion {

/// Difficulty presets from the paper: Easy (mu = 80), Hard (mu = 30).
struct SynthOptions {
  int dims = 2;
  int num_groups = 10;
  int tuples_per_group = 2000;
  /// Mean of the high-outlier distribution; closer to 10 is harder.
  double mu = 80.0;
  /// Normal tuple distribution N(normal_mean, normal_std). The Figure 15
  /// variance-reduction rerun uses normal_std = 0.
  double normal_mean = 10.0;
  double normal_std = 10.0;
  double outlier_std = 10.0;
  /// Dimension attribute domain.
  double domain_lo = 0.0;
  double domain_hi = 100.0;
  /// Volume fraction of the domain covered by the outer cube (~fraction of
  /// tuples it contains, under uniform placement).
  double outer_fraction = 0.25;
  /// Volume fraction of the outer cube covered by the inner cube.
  double inner_fraction = 0.25;
  uint64_t seed = 42;
};

/// Generated dataset plus everything the experiments need: the planted
/// cubes (as predicates), per-cube ground-truth rows, and the outlier /
/// hold-out group keys.
struct SynthDataset {
  Table table;
  GroupByQuery query;  // SELECT SUM(Av) ... GROUP BY Ad
  /// Explanation attributes A1..An.
  std::vector<std::string> attributes;
  /// Group keys whose Av mixes in outlier tuples.
  std::vector<std::string> outlier_keys;
  std::vector<std::string> holdout_keys;
  /// The planted cubes.
  Predicate outer_cube;
  Predicate inner_cube;
  /// Ground truth: rows of outlier groups inside each cube (outer includes
  /// the nested inner rows).
  RowIdList outer_rows;
  RowIdList inner_rows;

  SynthDataset() : table(Schema{}) {}
};

/// Deterministically generates a SYNTH dataset.
Result<SynthDataset> GenerateSynth(const SynthOptions& options);

/// Preset matching the paper's naming, e.g. SYNTH-3D-Hard.
SynthOptions SynthPreset(int dims, bool easy, uint64_t seed = 42);

}  // namespace scorpion
