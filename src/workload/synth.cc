#include "workload/synth.h"

#include <cmath>
#include <cstdio>

#include "common/macros.h"
#include "common/random.h"

namespace scorpion {

SynthOptions SynthPreset(int dims, bool easy, uint64_t seed) {
  SynthOptions opts;
  opts.dims = dims;
  opts.mu = easy ? 80.0 : 30.0;
  opts.seed = seed;
  return opts;
}

Result<SynthDataset> GenerateSynth(const SynthOptions& options) {
  if (options.dims < 1) {
    return Status::InvalidArgument("dims must be >= 1");
  }
  if (options.num_groups < 2) {
    return Status::InvalidArgument("need at least 2 groups");
  }
  if (options.domain_hi <= options.domain_lo) {
    return Status::InvalidArgument("empty dimension domain");
  }

  Rng rng(options.seed);
  const double domain_width = options.domain_hi - options.domain_lo;
  const double n = static_cast<double>(options.dims);

  // Cube side lengths from the target volume fractions.
  const double outer_side =
      domain_width * std::pow(options.outer_fraction, 1.0 / n);
  const double inner_side =
      outer_side * std::pow(options.inner_fraction, 1.0 / n);

  // Random placement: outer cube inside the domain, inner inside the outer.
  std::vector<double> outer_lo(options.dims), inner_lo(options.dims);
  for (int d = 0; d < options.dims; ++d) {
    outer_lo[d] = rng.Uniform(options.domain_lo,
                              options.domain_hi - outer_side);
    inner_lo[d] = rng.Uniform(outer_lo[d], outer_lo[d] + outer_side -
                                               inner_side);
  }

  // Schema: Ad (group), Av (value), A1..An (dimensions).
  std::vector<Field> fields;
  fields.push_back({"Ad", DataType::kCategorical});
  fields.push_back({"Av", DataType::kDouble});
  SynthDataset out;
  out.query.aggregate = "SUM";
  out.query.agg_attr = "Av";
  out.query.group_by = {"Ad"};
  for (int d = 0; d < options.dims; ++d) {
    std::string name = "A" + std::to_string(d + 1);
    fields.push_back({name, DataType::kDouble});
    out.attributes.push_back(name);
  }
  out.table = Table(Schema(std::move(fields)));

  for (int d = 0; d < options.dims; ++d) {
    RangeClause outer{out.attributes[d], outer_lo[d], outer_lo[d] + outer_side,
                      /*hi_inclusive=*/true};
    RangeClause inner{out.attributes[d], inner_lo[d], inner_lo[d] + inner_side,
                      /*hi_inclusive=*/true};
    SCORPION_RETURN_NOT_OK(out.outer_cube.AddRange(outer));
    SCORPION_RETURN_NOT_OK(out.inner_cube.AddRange(inner));
  }

  // Half the groups are outlier groups (first half for determinism).
  const int num_outlier_groups = options.num_groups / 2;
  std::vector<Value> row(2 + options.dims);
  std::vector<double> point(options.dims);
  for (int g = 0; g < options.num_groups; ++g) {
    char key[16];
    std::snprintf(key, sizeof(key), "g%02d", g);
    bool outlier_group = g < num_outlier_groups;
    (outlier_group ? out.outlier_keys : out.holdout_keys).push_back(key);
    for (int t = 0; t < options.tuples_per_group; ++t) {
      bool in_outer = true, in_inner = true;
      for (int d = 0; d < options.dims; ++d) {
        point[d] = rng.Uniform(options.domain_lo, options.domain_hi);
        in_outer &= point[d] >= outer_lo[d] &&
                    point[d] <= outer_lo[d] + outer_side;
        in_inner &= point[d] >= inner_lo[d] &&
                    point[d] <= inner_lo[d] + inner_side;
      }
      double av;
      if (outlier_group && in_inner) {
        av = rng.Normal(options.mu, options.outlier_std);
      } else if (outlier_group && in_outer) {
        av = rng.Normal((options.mu + options.normal_mean) / 2.0,
                        options.outlier_std);
      } else {
        av = rng.Normal(options.normal_mean, options.normal_std);
      }
      // SUM's anti-monotonicity check requires non-negative data; the
      // normal distribution's negative tail is clamped.
      av = std::max(0.0, av);
      row[0] = std::string(key);
      row[1] = av;
      for (int d = 0; d < options.dims; ++d) row[2 + d] = point[d];
      RowId row_id = static_cast<RowId>(out.table.num_rows());
      SCORPION_RETURN_NOT_OK(out.table.AppendRow(row));
      if (outlier_group && in_outer) out.outer_rows.push_back(row_id);
      if (outlier_group && in_inner) out.inner_rows.push_back(row_id);
    }
  }
  return out;
}

}  // namespace scorpion
