#include "workload/sensor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/macros.h"
#include "common/random.h"

namespace scorpion {

Result<SensorDataset> GenerateSensor(const SensorOptions& options) {
  if (options.failing_sensor < 0 ||
      options.failing_sensor >= options.num_sensors) {
    return Status::InvalidArgument("failing_sensor out of range");
  }
  if (options.failure_start_hour <= 0 ||
      options.failure_start_hour >= options.num_hours) {
    return Status::InvalidArgument(
        "failure_start_hour must leave both normal and failing hours");
  }

  Rng rng(options.seed);
  SensorDataset out;
  out.table = Table(Schema({{"hour", DataType::kCategorical},
                            {"sensorid", DataType::kCategorical},
                            {"voltage", DataType::kDouble},
                            {"humidity", DataType::kDouble},
                            {"light", DataType::kDouble},
                            {"temp", DataType::kDouble}}));
  out.query.aggregate = "STDDEV";
  out.query.agg_attr = "temp";
  out.query.group_by = {"hour"};
  out.attributes = {"sensorid", "voltage", "humidity", "light"};

  std::vector<Value> row(6);
  for (int hour = 0; hour < options.num_hours; ++hour) {
    char hour_key[16];
    std::snprintf(hour_key, sizeof(hour_key), "h%03d", hour);
    bool failing_hour = hour >= options.failure_start_hour;
    (failing_hour ? out.outlier_keys : out.holdout_keys)
        .push_back(hour_key);

    // Diurnal cycle drives baseline temperature and ambient light.
    double tod = 2.0 * M_PI * static_cast<double>(hour % 24) / 24.0;
    double base_temp = 20.0 + 4.0 * std::sin(tod);
    double base_light = std::max(0.0, 400.0 * std::sin(tod)) + 50.0;

    for (int sensor = 0; sensor < options.num_sensors; ++sensor) {
      char sensor_key[16];
      std::snprintf(sensor_key, sizeof(sensor_key), "%d", sensor);
      bool is_failing =
          sensor == options.failing_sensor && failing_hour;
      for (int k = 0; k < options.readings_per_sensor_per_hour; ++k) {
        double voltage, humidity, light, temp;
        humidity = std::clamp(rng.Normal(0.4, 0.05), 0.0, 1.0);
        if (!is_failing) {
          voltage = rng.Normal(2.65, 0.03);
          light = std::max(0.0, rng.Normal(base_light, 60.0));
          temp = rng.Normal(base_temp, 1.5);
        } else if (options.mode == SensorFailureMode::kDyingSensor) {
          // Dying mote: narrow low-voltage band, low light, temperatures
          // above 100C that run hotter as voltage drops (first INTEL
          // query's refinement structure).
          voltage = rng.Uniform(2.307, 2.33);
          light = rng.Uniform(0.0, 300.0);
          temp = 100.0 + (2.33 - voltage) * 800.0 + rng.Normal(0.0, 2.0);
        } else {
          // Battery decay: voltage well below 2.4; readings 90-122C, with
          // the extremes tied to a light band (second INTEL query).
          voltage = rng.Uniform(2.30, 2.39);
          light = std::max(0.0, rng.Normal(base_light * 0.8, 80.0));
          bool light_band = light >= 283.0 && light <= 354.0;
          temp = light_band ? rng.Normal(120.0, 2.0) : rng.Normal(95.0, 4.0);
        }
        row[0] = std::string(hour_key);
        row[1] = std::string(sensor_key);
        row[2] = voltage;
        row[3] = humidity;
        row[4] = light;
        row[5] = temp;
        RowId row_id = static_cast<RowId>(out.table.num_rows());
        SCORPION_RETURN_NOT_OK(out.table.AppendRow(row));
        if (is_failing) out.ground_truth_rows.push_back(row_id);
      }
    }
  }

  // Planted cause: sensorid = failing_sensor.
  SCORPION_ASSIGN_OR_RETURN(const Column* sensor_col,
                            out.table.ColumnByName("sensorid"));
  int32_t code = sensor_col->CodeOf(std::to_string(options.failing_sensor));
  if (code < 0) {
    return Status::Internal("failing sensor id missing from dictionary");
  }
  SCORPION_RETURN_NOT_OK(out.expected.AddSet({"sensorid", {code}}));
  return out;
}

}  // namespace scorpion
