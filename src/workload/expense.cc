#include "workload/expense.h"

#include <cmath>
#include <cstdio>

#include "common/macros.h"
#include "common/random.h"

namespace scorpion {

namespace {

const char* kStates[] = {"DC", "IL", "NY", "CA", "TX", "FL", "OH", "VA",
                         "MA", "PA", "WA", "MI", "NC", "GA", "CO", "MN"};
const char* kOrgTypes[] = {"CORP", "LLC", "PAC", "INDIVIDUAL", "PARTNERSHIP"};
const char* kDescriptions[] = {
    "PAYROLL",         "TRAVEL",        "CONSULTING",   "OFFICE SUPPLIES",
    "POLLING",         "PRINTING",      "POSTAGE",      "RENT",
    "PHONE BANKING",   "CATERING",      "SECURITY",     "ONLINE ADVERTISING",
    "EVENT PRODUCTION", "LEGAL SERVICES", "DIRECT MAIL", "MEDIA BUY"};

}  // namespace

Result<ExpenseDataset> GenerateExpense(const ExpenseOptions& options) {
  if (options.num_outlier_days >= options.num_days) {
    return Status::InvalidArgument("more outlier days than days");
  }
  Rng rng(options.seed);

  ExpenseDataset out;
  out.table = Table(Schema({{"date", DataType::kCategorical},
                            {"recipient_nm", DataType::kCategorical},
                            {"recipient_st", DataType::kCategorical},
                            {"zip", DataType::kCategorical},
                            {"org_type", DataType::kCategorical},
                            {"disb_desc", DataType::kCategorical},
                            {"file_num", DataType::kCategorical},
                            {"disb_amt", DataType::kDouble}}));
  out.query.aggregate = "SUM";
  out.query.agg_attr = "disb_amt";
  out.query.group_by = {"date"};
  out.attributes = {"recipient_nm", "recipient_st", "zip",
                    "org_type",     "disb_desc",    "file_num"};

  const int num_states = static_cast<int>(std::size(kStates));
  const int num_org_types = static_cast<int>(std::size(kOrgTypes));
  const int num_descs = static_cast<int>(std::size(kDescriptions));

  // Outlier days are spread through the calendar deterministically.
  std::vector<bool> is_outlier_day(options.num_days, false);
  for (int i = 0; i < options.num_outlier_days; ++i) {
    int day = (i + 1) * options.num_days / (options.num_outlier_days + 1);
    is_outlier_day[day] = true;
  }

  std::vector<Value> row(8);
  auto append = [&](const std::string& date, const std::string& recipient,
                    const std::string& state, const std::string& zip,
                    const std::string& org, const std::string& desc,
                    const std::string& file_num, double amount) -> Status {
    row[0] = date;
    row[1] = recipient;
    row[2] = state;
    row[3] = zip;
    row[4] = org;
    row[5] = desc;
    row[6] = file_num;
    row[7] = amount;
    RowId row_id = static_cast<RowId>(out.table.num_rows());
    SCORPION_RETURN_NOT_OK(out.table.AppendRow(row));
    if (amount > 1.5e6) out.ground_truth_rows.push_back(row_id);
    return Status::OK();
  };

  for (int day = 0; day < options.num_days; ++day) {
    char date_key[16];
    std::snprintf(date_key, sizeof(date_key), "d%03d", day);
    if (is_outlier_day[day]) {
      out.outlier_keys.push_back(date_key);
    } else if (day % 4 == 0 && out.holdout_keys.size() < 27) {
      // The paper flags 27 typical days as hold-outs.
      out.holdout_keys.push_back(date_key);
    }

    for (int r = 0; r < options.rows_per_day; ++r) {
      // No single attribute is exclusive to the planted spike rows, so the
      // maximum-influence explanation at high c is a conjunction (like the
      // paper's 4-clause EXPENSE result): file numbers 800316/800317 also
      // file ordinary expenses, MEDIA BUY also describes small ad buys, and
      // GMMB INC. also receives routine consulting payments.
      char recipient[24], zip[16], file_num[16];
      if (rng.Bernoulli(0.01)) {
        std::snprintf(recipient, sizeof(recipient), "GMMB INC.");
      } else {
        std::snprintf(recipient, sizeof(recipient), "VENDOR %04d",
                      static_cast<int>(
                          rng.UniformInt(0, options.num_recipients - 1)));
      }
      std::snprintf(zip, sizeof(zip), "%05d",
                    20001 + static_cast<int>(
                                rng.UniformInt(0, options.num_zip_codes - 1)));
      std::snprintf(file_num, sizeof(file_num), "%d",
                    800300 + static_cast<int>(rng.UniformInt(0, 17)));
      // Ordinary spending: log-uniform $50 .. ~$50k, mostly small (the
      // paper notes ~$5k/day typical totals dominated by small items).
      double amount = std::exp(rng.Uniform(std::log(50.0), std::log(5.0e4)));
      int desc_idx = static_cast<int>(rng.UniformInt(0, num_descs - 1));
      SCORPION_RETURN_NOT_OK(append(
          date_key, recipient, kStates[rng.UniformInt(0, num_states - 1)],
          zip, kOrgTypes[rng.UniformInt(0, num_org_types - 1)],
          kDescriptions[desc_idx], file_num, amount));
    }

    if (is_outlier_day[day]) {
      for (int b = 0; b < options.media_buys_per_outlier_day; ++b) {
        double amount = rng.Uniform(options.media_buy_lo, options.media_buy_hi);
        // One in three media buys is filed under a second report number,
        // mirroring the paper's two GMMB filings where file_num 800316
        // carries the higher average.
        const char* file_num = (b % 3 == 2) ? "800317" : "800316";
        if (b % 3 == 2) amount *= 0.55;
        SCORPION_RETURN_NOT_OK(append(date_key, "GMMB INC.", "DC", "20001",
                                      "CORP", "MEDIA BUY", file_num, amount));
      }
    }
  }

  // Expected high-c explanation (paper Section 8.4):
  // recipient_st='DC' & recipient_nm='GMMB INC.' & file_num=800316 &
  // disb_desc='MEDIA BUY'.
  auto code_of = [&](const char* attr, const std::string& value) -> Result<int32_t> {
    SCORPION_ASSIGN_OR_RETURN(const Column* col, out.table.ColumnByName(attr));
    int32_t code = col->CodeOf(value);
    if (code < 0) return Status::Internal(std::string(attr) + " value missing");
    return code;
  };
  SCORPION_ASSIGN_OR_RETURN(int32_t rec, code_of("recipient_nm", "GMMB INC."));
  SCORPION_ASSIGN_OR_RETURN(int32_t st, code_of("recipient_st", "DC"));
  SCORPION_ASSIGN_OR_RETURN(int32_t desc, code_of("disb_desc", "MEDIA BUY"));
  SCORPION_ASSIGN_OR_RETURN(int32_t file, code_of("file_num", "800316"));
  SCORPION_RETURN_NOT_OK(out.expected.AddSet({"recipient_nm", {rec}}));
  SCORPION_RETURN_NOT_OK(out.expected.AddSet({"recipient_st", {st}}));
  SCORPION_RETURN_NOT_OK(out.expected.AddSet({"disb_desc", {desc}}));
  SCORPION_RETURN_NOT_OK(out.expected.AddSet({"file_num", {file}}));
  return out;
}

}  // namespace scorpion
