// Group-by aggregate query execution with backwards provenance.
//
// Scorpion's input is a SELECT agg(A_agg), A_gb FROM D GROUP BY A_gb query
// (Section 3.1). Executing it here produces, for every output row, both the
// aggregate value and the exact set of input rows that generated it (the
// input group g_alpha), which is the provenance the rest of the system
// works backwards through.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "table/selection.h"
#include "table/table.h"

namespace scorpion {

/// \brief Specification of a single-aggregate group-by query.
struct GroupByQuery {
  /// Registered aggregate name (see GetAggregate), e.g. "AVG".
  std::string aggregate;
  /// Continuous attribute the aggregate is computed over (A_agg).
  std::string agg_attr;
  /// Grouping attributes (A_gb); may be continuous or categorical.
  std::vector<std::string> group_by;

  std::string ToString() const;
};

/// \brief One output row of a group-by query, with provenance.
struct AggregateResult {
  /// Values of the group-by attributes for this group.
  std::vector<Value> key;
  /// Canonical display string of the key, e.g. "12PM" or "2012-06-01".
  std::string key_string;
  /// The aggregate value agg(g_alpha).
  double value = 0.0;
  /// Provenance: the input group g_alpha as a Selection over D's rows
  /// (vector form, already materialized — safe to share across scoring
  /// threads; use input_group.rows() for the sorted id list).
  Selection input_group;
};

/// \brief Full result set of a query over one table.
struct QueryResult {
  GroupByQuery query;
  std::vector<AggregateResult> results;  // sorted by key_string

  /// Index of the result with the given key string, or KeyError.
  Result<int> FindResult(const std::string& key_string) const;

  /// Batch lookup: indices for every key in `keys`, in input order, or a
  /// KeyError naming the first missing key. One pass over the results
  /// instead of a scan per key — and one error check instead of the
  /// CHECK_OK + ValueOrDie pair per key the scan-per-key pattern invited.
  Result<std::vector<int>> FindResults(
      const std::vector<std::string>& keys) const;

  /// Formats results as a small table for display.
  std::string ToString() const;
};

/// Executes the query over `table`. Errors if attributes are missing, the
/// aggregate attribute is not continuous, or the aggregate name is unknown.
Result<QueryResult> ExecuteGroupBy(const Table& table,
                                   const GroupByQuery& query);

/// Incremental re-execution for live tables: `table` must be a row-wise
/// extension of the table `old` was computed over (same schema, same
/// encoded prefix — the guarantee LiveTable::Publish provides between
/// generations). Only rows past old's high-water mark are scanned and
/// keyed; each touched group's aggregate is recomputed over its full row
/// list (aggregates are not generally decomposable, and the column read is
/// cheap next to a full-table rescan). The output is value-identical to
/// ExecuteGroupBy(table, old.query): same groups, same order, same
/// Selections, same aggregates.
Result<QueryResult> ExtendQueryResult(const QueryResult& old,
                                      const Table& table);

/// The explanation attributes A_rest = all attributes minus group-by minus
/// the aggregate attribute (Section 3.1).
Result<std::vector<std::string>> ExplanationAttributes(
    const Table& table, const GroupByQuery& query);

}  // namespace scorpion
