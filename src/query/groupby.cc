#include "query/groupby.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "aggregates/aggregate.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace scorpion {

std::string GroupByQuery::ToString() const {
  std::ostringstream os;
  os << "SELECT " << aggregate << "(" << agg_attr << ")";
  for (const std::string& g : group_by) os << ", " << g;
  os << " GROUP BY " << Join(group_by, ", ");
  return os.str();
}

Result<int> QueryResult::FindResult(const std::string& key_string) const {
  for (int i = 0; i < static_cast<int>(results.size()); ++i) {
    if (results[i].key_string == key_string) return i;
  }
  return Status::KeyError("no result group with key '" + key_string + "'");
}

Result<std::vector<int>> QueryResult::FindResults(
    const std::vector<std::string>& keys) const {
  std::map<std::string, int> index_of;
  for (int i = 0; i < static_cast<int>(results.size()); ++i) {
    index_of.emplace(results[i].key_string, i);
  }
  std::vector<int> out;
  out.reserve(keys.size());
  for (const std::string& key : keys) {
    auto it = index_of.find(key);
    if (it == index_of.end()) {
      return Status::KeyError("no result group with key '" + key + "'");
    }
    out.push_back(it->second);
  }
  return out;
}

std::string QueryResult::ToString() const {
  std::ostringstream os;
  os << query.ToString() << "\n";
  for (const AggregateResult& r : results) {
    os << "  " << r.key_string << " -> " << FormatDouble(r.value) << "  (|g|="
       << r.input_group.size() << ")\n";
  }
  return os.str();
}

Result<QueryResult> ExecuteGroupBy(const Table& table,
                                   const GroupByQuery& query) {
  if (query.group_by.empty()) {
    return Status::InvalidArgument("query needs at least one GROUP BY attribute");
  }
  SCORPION_ASSIGN_OR_RETURN(const Aggregate* agg, GetAggregate(query.aggregate));
  SCORPION_ASSIGN_OR_RETURN(const Column* agg_col,
                            table.ColumnByName(query.agg_attr));
  if (agg_col->type() != DataType::kDouble) {
    return Status::TypeError("aggregate attribute '" + query.agg_attr +
                             "' must be continuous");
  }
  std::vector<const Column*> key_cols;
  for (const std::string& g : query.group_by) {
    if (g == query.agg_attr) {
      return Status::InvalidArgument(
          "attribute '" + g + "' cannot be both grouped and aggregated");
    }
    SCORPION_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(g));
    key_cols.push_back(col);
  }

  // Group rows by the composite key string. std::map keeps groups in
  // deterministic key order.
  std::map<std::string, RowIdList> groups;
  std::string key;
  for (RowId r = 0; r < static_cast<RowId>(table.num_rows()); ++r) {
    key.clear();
    for (size_t k = 0; k < key_cols.size(); ++k) {
      if (k > 0) key += "|";
      const Column* col = key_cols[k];
      if (col->type() == DataType::kDouble) {
        key += FormatDouble(col->GetDouble(r), 12);
      } else {
        key += col->GetString(r);
      }
    }
    groups[key].push_back(r);
  }

  QueryResult out;
  out.query = query;
  out.results.reserve(groups.size());
  for (auto& [key_string, rows] : groups) {
    AggregateResult res;
    res.key_string = key_string;
    RowId first = rows.front();
    for (const Column* col : key_cols) {
      if (col->type() == DataType::kDouble) {
        res.key.emplace_back(col->GetDouble(first));
      } else {
        res.key.emplace_back(col->GetString(first));
      }
    }
    res.value = agg->Compute(ExtractValues(*agg_col, rows));
    // Row-scan order is ascending, so the list is already sorted.
    res.input_group = Selection::FromSorted(std::move(rows), table.num_rows());
    out.results.push_back(std::move(res));
  }
  return out;
}

Result<QueryResult> ExtendQueryResult(const QueryResult& old,
                                      const Table& table) {
  const GroupByQuery& query = old.query;
  const size_t old_rows =
      old.results.empty() ? 0 : old.results.front().input_group.universe_size();
  if (table.num_rows() < old_rows) {
    return Status::InvalidArgument(
        "ExtendQueryResult: table has " + std::to_string(table.num_rows()) +
        " rows but the old result covers " + std::to_string(old_rows));
  }
  if (table.num_rows() == old_rows) return old;

  SCORPION_ASSIGN_OR_RETURN(const Aggregate* agg, GetAggregate(query.aggregate));
  SCORPION_ASSIGN_OR_RETURN(const Column* agg_col,
                            table.ColumnByName(query.agg_attr));
  std::vector<const Column*> key_cols;
  for (const std::string& g : query.group_by) {
    SCORPION_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(g));
    key_cols.push_back(col);
  }

  // Re-seed the key map from the old result's provenance (group row lists
  // are ascending, and old rows keep their ids under append-only growth),
  // then fold in only the delta rows with the exact key construction
  // ExecuteGroupBy uses.
  std::map<std::string, RowIdList> groups;
  std::map<std::string, double> old_values;
  for (const AggregateResult& res : old.results) {
    groups[res.key_string] = res.input_group.rows();
    old_values[res.key_string] = res.value;
  }
  std::string key;
  for (RowId r = static_cast<RowId>(old_rows);
       r < static_cast<RowId>(table.num_rows()); ++r) {
    key.clear();
    for (size_t k = 0; k < key_cols.size(); ++k) {
      if (k > 0) key += "|";
      const Column* col = key_cols[k];
      if (col->type() == DataType::kDouble) {
        key += FormatDouble(col->GetDouble(r), 12);
      } else {
        key += col->GetString(r);
      }
    }
    groups[key].push_back(r);
  }

  QueryResult out;
  out.query = query;
  out.results.reserve(groups.size());
  for (auto& [key_string, rows] : groups) {
    AggregateResult res;
    res.key_string = key_string;
    RowId first = rows.front();
    for (const Column* col : key_cols) {
      if (col->type() == DataType::kDouble) {
        res.key.emplace_back(col->GetDouble(first));
      } else {
        res.key.emplace_back(col->GetString(first));
      }
    }
    // Untouched groups keep their old aggregate verbatim — same rows in
    // the same ascending order would recompute to the same bits, so this
    // is purely a cost cut for the common many-groups/few-touched case.
    auto grown = old_values.find(key_string);
    const bool untouched =
        grown != old_values.end() &&
        (rows.empty() || rows.back() < static_cast<RowId>(old_rows));
    res.value = untouched ? grown->second
                          : agg->Compute(ExtractValues(*agg_col, rows));
    res.input_group = Selection::FromSorted(std::move(rows), table.num_rows());
    out.results.push_back(std::move(res));
  }
  return out;
}

Result<std::vector<std::string>> ExplanationAttributes(
    const Table& table, const GroupByQuery& query) {
  // Validate the referenced attributes exist.
  SCORPION_RETURN_NOT_OK(table.ColumnByName(query.agg_attr).status());
  for (const std::string& g : query.group_by) {
    SCORPION_RETURN_NOT_OK(table.ColumnByName(g).status());
  }
  std::vector<std::string> out;
  for (const Field& f : table.schema().fields()) {
    if (f.name == query.agg_attr) continue;
    if (std::find(query.group_by.begin(), query.group_by.end(), f.name) !=
        query.group_by.end()) {
      continue;
    }
    out.push_back(f.name);
  }
  return out;
}

}  // namespace scorpion
