// ExplanationService: the async batched serving layer above the Scorpion
// engine. Accepts many concurrent explanation requests, schedules them by
// priority and deadline through a bounded queue, executes them on worker
// threads that share one scoring ThreadPool, and reuses DT partitions /
// merged results across requests through a keyed, LRU-bounded session cache
// (the Section 8.3.3 cache generalized from one Prepare() session to many
// concurrent problem keys).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/thread_pool.h"
#include "core/scorpion.h"
#include "service/job.h"
#include "service/scheduler.h"
#include "service/stats.h"

namespace scorpion {

struct ServiceOptions {
  /// Engine tuning shared by every request. `engine.algorithm` is overridden
  /// per request; `engine.num_threads` sizes the shared scoring pool
  /// (0 = one thread per hardware core, 1 = serial scoring).
  ScorpionOptions engine;
  /// Request-execution threads. 0 is allowed: requests queue but never run
  /// (useful for tests and manual draining — Shutdown() cancels them).
  int num_workers = 2;
  /// Scheduler bound; beyond it, admission control sheds (see Scheduler).
  size_t max_queue_depth = 256;
  /// Problem keys kept in the session cache; least-recently-used beyond
  /// this are evicted (in-flight requests keep their session alive).
  size_t session_cache_capacity = 8;
  /// Master switch for cross-request session reuse.
  bool cache_enabled = true;
  /// Enables Section 8.3.3 cross-c warm starts between cached c values.
  /// Warm-started merges only improve influence, but the output then depends
  /// on request completion order; the default keeps every response
  /// byte-identical to a direct Scorpion::Explain() of the same request.
  bool cross_c_warm_start = false;
};

/// \brief Async, batched front-end over the Scorpion engine.
///
///   ExplanationService service(options);
///   Response r = service.Submit({.table = &t, .query_result = &qr,
///                                .problem = problem});
///   Result<Explanation> e = r.future.get();
///
/// (The typed public surface for this is api::Dataset::ExplainAsync, which
/// resolves an ExplainRequest into a Job and pins the dataset's session.)
///
/// All public methods are thread-safe. Tables and query results referenced
/// by a job are borrowed and must outlive its future's readiness.
class ExplanationService {
 public:
  explicit ExplanationService(ServiceOptions options = {});
  ~ExplanationService();

  SCORPION_DISALLOW_COPY_AND_ASSIGN(ExplanationService);

  /// Validates and enqueues one job. Never blocks on a full queue: the
  /// future reports Unavailable when shed (see Response for the full error
  /// contract).
  Response Submit(Job job);

  /// Submits a batch, grouped so jobs sharing a session key are enqueued
  /// back-to-back: the first job of each (table, query, problem, algorithm)
  /// key computes the DT partitions once and the rest of the group reuses
  /// them (and exact-c repeats reuse whole results). Responses are returned
  /// in the order of `jobs`.
  std::vector<Response> SubmitBatch(std::vector<Job> jobs);

  /// Cancels a queued job (its future reports Cancelled). False if the job
  /// already started, finished, or was never queued.
  bool Cancel(uint64_t id);

  /// Drops every cached session. Session keys identify the borrowed tables
  /// and query results by address, so before freeing a table the service
  /// has served (and then reusing its storage), call this — a later table
  /// allocated at a recycled address would otherwise hit the stale
  /// session's cached results. In-flight requests finish safely on their
  /// own shared_ptr reference.
  void InvalidateSessions();

  /// Stops admission, cancels queued requests, and joins the workers after
  /// their in-flight requests finish. Idempotent; the destructor calls it.
  void Shutdown();

  ServiceStatsSnapshot stats() const;
  size_t queue_depth() const { return scheduler_.depth(); }

  const ServiceOptions& options() const { return options_; }

 private:
  struct SessionEntry {
    std::shared_ptr<ExplainSession> session = std::make_shared<ExplainSession>();
    std::atomic<uint64_t> last_used{0};
  };

  /// Looks up (shared lock) or creates (exclusive lock, LRU-evicting) the
  /// session for a problem key.
  std::shared_ptr<ExplainSession> SessionFor(const std::string& key);

  void WorkerLoop();
  void Execute(ScheduledJob item);

  ServiceOptions options_;
  std::unique_ptr<ThreadPool> scoring_pool_;  // nullptr = serial scoring
  Scheduler scheduler_;
  ServiceStats stats_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> use_clock_{0};
  // Serializes Shutdown(): a concurrent second caller blocks until the
  // winner has joined the workers, so "after Shutdown() returns, nothing
  // touches the service or the borrowed tables" holds for every caller.
  Mutex shutdown_mu_;
  bool shutdown_ SCORPION_GUARDED_BY(shutdown_mu_) = false;

  mutable SharedMutex sessions_mu_;
  std::unordered_map<std::string, std::shared_ptr<SessionEntry>> sessions_
      SCORPION_GUARDED_BY(sessions_mu_);

  // Spawned in the constructor, joined+cleared only by the Shutdown winner.
  std::vector<std::thread> workers_ SCORPION_GUARDED_BY(shutdown_mu_);
};

}  // namespace scorpion
