#include "service/scheduler.h"

#include <utility>
#include <vector>

namespace scorpion {

Scheduler::Scheduler(SchedulerOptions options) : options_(std::move(options)) {
  if (options_.max_queue_depth == 0) options_.max_queue_depth = 1;
}

Scheduler::~Scheduler() { Shutdown(); }

AdmissionResult Scheduler::Enqueue(ScheduledJob item) {
  ScheduledJob shed_item;
  AdmissionResult result;
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      // Fulfil outside the lock, below.
      shed_item = std::move(item);
      result = AdmissionResult::kShutdown;
    } else if (queue_.size() < options_.max_queue_depth) {
      Order key = OrderOf(item);
      queue_.emplace(key, std::move(item));
      result = AdmissionResult::kAdmitted;
    } else {
      // Full: the admission loser — the incoming request or the
      // worst-ordered queued one — is shed.
      auto worst = std::prev(queue_.end());
      Order key = OrderOf(item);
      if (key < worst->first) {
        shed_item = std::move(worst->second);
        queue_.erase(worst);
        queue_.emplace(key, std::move(item));
        result = AdmissionResult::kAdmittedEvictedWorst;
      } else {
        shed_item = std::move(item);
        result = AdmissionResult::kShed;
      }
    }
  }
  switch (result) {
    case AdmissionResult::kAdmitted:
      ready_cv_.NotifyOne();
      break;
    case AdmissionResult::kAdmittedEvictedWorst:
      ready_cv_.NotifyOne();
      shed_item.promise.set_value(
          Status::Unavailable("request shed: queue full"));
      break;
    case AdmissionResult::kShed:
      shed_item.promise.set_value(
          Status::Unavailable("request shed: queue full"));
      break;
    case AdmissionResult::kShutdown:
      shed_item.promise.set_value(
          Status::Cancelled("scheduler is shut down"));
      break;
  }
  return result;
}

bool Scheduler::Pop(ScheduledJob* out) {
  MutexLock lock(mu_);
  // Inline re-check (not a wait predicate) so the analysis sees the guarded
  // reads under the held capability.
  while (!shutdown_ && queue_.empty()) ready_cv_.Wait(mu_);
  if (queue_.empty()) return false;  // shutdown drained the queue
  auto best = queue_.begin();
  *out = std::move(best->second);
  queue_.erase(best);
  return true;
}

bool Scheduler::Cancel(uint64_t id) {
  ScheduledJob cancelled;
  {
    MutexLock lock(mu_);
    // Linear scan: the queue is bounded by max_queue_depth and cancellation
    // is off the serving hot path.
    auto it = queue_.begin();
    for (; it != queue_.end(); ++it) {
      if (it->first.id == id) break;
    }
    if (it == queue_.end()) return false;
    cancelled = std::move(it->second);
    queue_.erase(it);
  }
  cancelled.promise.set_value(Status::Cancelled("request cancelled"));
  return true;
}

size_t Scheduler::Shutdown() {
  std::vector<ScheduledJob> drained;
  {
    MutexLock lock(mu_);
    if (shutdown_ && queue_.empty()) return 0;
    shutdown_ = true;
    drained.reserve(queue_.size());
    for (auto& [key, item] : queue_) drained.push_back(std::move(item));
    queue_.clear();
  }
  ready_cv_.NotifyAll();
  for (ScheduledJob& item : drained) {
    item.promise.set_value(Status::Cancelled("service shut down"));
  }
  return drained.size();
}

size_t Scheduler::depth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

}  // namespace scorpion
