// Bounded submission queue for the ExplanationService: priority + deadline
// ordered dequeue, admission control when full, per-request cancellation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>

#include "common/macros.h"
#include "common/mutex.h"
#include "service/job.h"

namespace scorpion {

struct SchedulerOptions {
  /// Maximum requests waiting to run; beyond this, admission control sheds.
  size_t max_queue_depth = 256;
};

/// \brief One queued job: the Job plus the promise its Response redeems
/// and the submission timestamp for latency accounting.
struct ScheduledJob {
  uint64_t id = 0;
  Job job;
  std::promise<Result<Explanation>> promise;
  Job::Clock::time_point enqueue_time{};
};

/// How Enqueue() disposed of a request.
enum class AdmissionResult {
  kAdmitted,             // queued
  kAdmittedEvictedWorst, // queued; the worst-ordered queued request was shed
  kShed,                 // queue full and the request ordered worst; shed
  kShutdown,             // scheduler shut down; request cancelled
};

/// \brief Bounded, priority + deadline ordered submission queue.
///
/// Dequeue order: higher priority first; within a priority, earlier deadline
/// first; FIFO (by id) last. When the queue is full, the incoming request is
/// compared against the worst-ordered queued one and the loser is shed with
/// Status::Unavailable — producers never block on admission, and a full
/// queue never keeps a worse request over a better one.
///
/// All methods are thread-safe; shed/cancelled/shutdown promises are
/// fulfilled by the scheduler so every submitted future becomes ready.
class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options);
  ~Scheduler();

  SCORPION_DISALLOW_COPY_AND_ASSIGN(Scheduler);

  /// Admits `item` or sheds the admission loser (whose promise is failed
  /// with Status::Unavailable). After Shutdown(), fails the promise with
  /// Status::Cancelled and returns kShutdown.
  AdmissionResult Enqueue(ScheduledJob item);

  /// Blocks until a request is available and moves the best-ordered one to
  /// `out`. Returns false once the scheduler is shut down.
  bool Pop(ScheduledJob* out);

  /// Removes a queued request, failing its promise with Status::Cancelled.
  /// Returns false if the id is not queued (unknown, already popped, or
  /// already finished).
  bool Cancel(uint64_t id);

  /// Stops admission, fails every queued request's promise with
  /// Status::Cancelled, and wakes all Pop() callers. Idempotent. Returns
  /// how many queued requests were cancelled.
  size_t Shutdown();

  size_t depth() const;

 private:
  /// Dequeue-order key; operator< orders best-first.
  struct Order {
    int priority = 0;
    Job::Clock::time_point deadline{};
    uint64_t id = 0;

    bool operator<(const Order& other) const {
      if (priority != other.priority) return priority > other.priority;
      if (deadline != other.deadline) return deadline < other.deadline;
      return id < other.id;
    }
  };

  static Order OrderOf(const ScheduledJob& item) {
    return Order{item.job.priority, item.job.deadline, item.id};
  }

  SchedulerOptions options_;
  mutable Mutex mu_;
  CondVar ready_cv_;
  std::map<Order, ScheduledJob> queue_ SCORPION_GUARDED_BY(mu_);
  bool shutdown_ SCORPION_GUARDED_BY(mu_) = false;
};

}  // namespace scorpion
