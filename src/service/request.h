// Request/Response types for the ExplanationService: one explanation job —
// the problem instance plus serving metadata (priority, deadline) — and the
// future the caller redeems for the result.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>

#include "common/result.h"
#include "core/options.h"
#include "core/problem.h"
#include "core/scorpion.h"
#include "query/groupby.h"
#include "table/table.h"

namespace scorpion {

/// \brief One explanation job submitted to the ExplanationService.
///
/// `table` and `query_result` are borrowed: they must stay alive until the
/// response future is ready (the service never copies table data). Requests
/// sharing the same table, query result, problem annotations and algorithm
/// form one session key and share cached DT partitions / merged results.
/// The key identifies the table and query result by address, so before
/// freeing a served table and reusing its storage, call
/// ExplanationService::InvalidateSessions() (or keep the table alive for
/// the service's lifetime) — a new table at a recycled address would
/// otherwise be served the old table's cached results.
struct Request {
  using Clock = std::chrono::steady_clock;
  /// Sentinel meaning "no deadline".
  static constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

  const Table* table = nullptr;
  const QueryResult* query_result = nullptr;
  /// Outlier/hold-out annotations and knobs. `problem.c` is overridden by
  /// `c` below, so one ProblemSpec can be reused across mixed-c requests.
  ProblemSpec problem;
  /// Cardinality exponent for this request (Section 7).
  double c = 1.0;
  Algorithm algorithm = Algorithm::kDT;
  /// Higher-priority requests are dequeued first.
  int priority = 0;
  /// Requests not started by this instant complete with
  /// Status::DeadlineExceeded instead of running.
  Clock::time_point deadline = kNoDeadline;

  /// Convenience: sets the deadline relative to now.
  void set_deadline_after(double seconds) {
    deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(seconds));
  }
};

/// \brief Handle for a submitted request.
///
/// The future becomes ready with the Explanation, or with an error Status:
///   - DeadlineExceeded: the deadline passed before the request ran.
///   - Unavailable: shed on admission (queue full).
///   - Cancelled: Cancel(id) or service shutdown removed it from the queue.
struct Response {
  /// Service-unique id, usable with ExplanationService::Cancel().
  uint64_t id = 0;
  std::future<Result<Explanation>> future;
};

}  // namespace scorpion
