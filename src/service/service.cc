#include "service/service.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "common/failpoint.h"

namespace scorpion {

namespace {

/// Session key: everything that fixes the DT partitioning and the merge
/// inputs except c — the identity of the (borrowed) table and query result,
/// then the shared annotation serialization (see AppendAnnotationKey). Jobs
/// agreeing on this key can share cached partitions at any c.
std::string ProblemKey(const Job& job) {
  std::string key;
  char head[64];
  std::snprintf(head, sizeof(head), "%p|%p|",
                static_cast<const void*>(job.table),
                static_cast<const void*>(job.query_result));
  key += head;
  AppendAnnotationKey(job.problem, job.algorithm, &key);
  return key;
}

}  // namespace

ExplanationService::ExplanationService(ServiceOptions options)
    : options_(std::move(options)),
      scheduler_(SchedulerOptions{options_.max_queue_depth}) {
  if (options_.num_workers < 0) options_.num_workers = 0;
  if (options_.session_cache_capacity == 0) options_.session_cache_capacity = 1;
  int scoring_threads = options_.engine.num_threads;
  if (scoring_threads == 0) scoring_threads = ThreadPool::DefaultNumThreads();
  if (scoring_threads > 1) {
    scoring_pool_ = std::make_unique<ThreadPool>(scoring_threads);
  }
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ExplanationService::~ExplanationService() { Shutdown(); }

Response ExplanationService::Submit(Job job) {
  Response response;
  response.id = next_id_.fetch_add(1, std::memory_order_relaxed);

  ScheduledJob item;
  item.id = response.id;
  item.enqueue_time = Job::Clock::now();
  item.job = std::move(job);
  response.future = item.promise.get_future();

  // Fail fast before the job occupies queue space.
  if (item.job.table == nullptr || item.job.query_result == nullptr) {
    ++stats_.failed;
    item.promise.set_value(
        Status::InvalidArgument("job needs a table and a query result"));
    return response;
  }
  Status valid = item.job.problem.Validate(*item.job.query_result);
  if (!valid.ok()) {
    ++stats_.failed;
    item.promise.set_value(std::move(valid));
    return response;
  }

  // Fault injection at the admission boundary: an injected error rejects
  // the job cleanly (promise fulfilled, counted as failed) exactly like a
  // validation failure; a sleep simulates a slow producer.
  SCORPION_FAILPOINT_HIT("service.enqueue", fp_hit);
  if (fp_hit.fired()) {
    ++stats_.failed;
    item.promise.set_value(
        fp_hit.kind == FailpointHit::Kind::kStatus
            ? fp_hit.status
            : Status::Unavailable("failpoint 'service.enqueue' injected"));
    return response;
  }

  switch (scheduler_.Enqueue(std::move(item))) {
    case AdmissionResult::kAdmitted:
      ++stats_.submitted;
      break;
    case AdmissionResult::kAdmittedEvictedWorst:
      ++stats_.submitted;
      ++stats_.shed;
      break;
    case AdmissionResult::kShed:
      ++stats_.shed;
      break;
    case AdmissionResult::kShutdown:
      ++stats_.cancelled;
      break;
  }
  return response;
}

std::vector<Response> ExplanationService::SubmitBatch(std::vector<Job> jobs) {
  // Stable-group by session key so each key's first job computes the shared
  // state (DT partitions) and the rest of its group arrives while it is
  // fresh; responses keep the input order.
  std::vector<std::vector<size_t>> groups;
  std::unordered_map<std::string, size_t> group_of_key;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const std::string key = ProblemKey(jobs[i]);
    auto [it, inserted] = group_of_key.emplace(key, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(i);
  }

  std::vector<Response> responses(jobs.size());
  for (const std::vector<size_t>& group : groups) {
    for (size_t i : group) {
      responses[i] = Submit(std::move(jobs[i]));
    }
  }
  return responses;
}

void ExplanationService::InvalidateSessions() {
  WriterMutexLock lock(sessions_mu_);
  sessions_.clear();
}

bool ExplanationService::Cancel(uint64_t id) {
  if (scheduler_.Cancel(id)) {
    ++stats_.cancelled;
    return true;
  }
  return false;
}

void ExplanationService::Shutdown() {
  MutexLock lock(shutdown_mu_);
  if (shutdown_) return;
  stats_.cancelled += scheduler_.Shutdown();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  shutdown_ = true;
}

ServiceStatsSnapshot ExplanationService::stats() const {
  return stats_.Snapshot(scheduler_.depth());
}

std::shared_ptr<ExplainSession> ExplanationService::SessionFor(
    const std::string& key) {
  const uint64_t stamp = use_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    ReaderMutexLock lock(sessions_mu_);
    // Const view: the shared lock permits reads only, and the analysis
    // treats non-const map calls as writes. The entries themselves are
    // behind shared_ptr and their recency stamp is atomic, so refreshing it
    // under the shared lock is safe.
    const auto& sessions = sessions_;
    auto it = sessions.find(key);
    if (it != sessions.end()) {
      it->second->last_used.store(stamp, std::memory_order_relaxed);
      return it->second->session;
    }
  }
  WriterMutexLock lock(sessions_mu_);
  auto it = sessions_.find(key);
  if (it != sessions_.end()) {
    it->second->last_used.store(stamp, std::memory_order_relaxed);
    return it->second->session;
  }
  if (sessions_.size() >= options_.session_cache_capacity) {
    // Evict the least-recently-used key. Jobs already holding the session
    // keep it alive through their shared_ptr.
    auto victim = sessions_.begin();
    for (auto cand = sessions_.begin(); cand != sessions_.end(); ++cand) {
      if (cand->second->last_used.load(std::memory_order_relaxed) <
          victim->second->last_used.load(std::memory_order_relaxed)) {
        victim = cand;
      }
    }
    sessions_.erase(victim);
  }
  auto entry = std::make_shared<SessionEntry>();
  entry->last_used.store(stamp, std::memory_order_relaxed);
  std::shared_ptr<ExplainSession> session = entry->session;
  sessions_.emplace(key, std::move(entry));
  return session;
}

void ExplanationService::WorkerLoop() {
  ScheduledJob item;
  while (scheduler_.Pop(&item)) {
    Execute(std::move(item));
  }
}

void ExplanationService::Execute(ScheduledJob item) {
  const Job& job = item.job;
  // Sits just before the deadline gate so a `sleep` action creates real
  // deadline pressure (the check below then expires the job) and an
  // injected error fails the run cleanly through its promise.
  SCORPION_FAILPOINT_HIT("service.deadline_check", fp_hit);
  if (fp_hit.kind == FailpointHit::Kind::kStatus) {
    ++stats_.failed;
    item.promise.set_value(fp_hit.status);
    return;
  }
  if (job.deadline != Job::kNoDeadline &&
      Job::Clock::now() >= job.deadline) {
    ++stats_.deadline_expired;
    item.promise.set_value(
        Status::DeadlineExceeded("deadline passed before the job ran"));
    return;
  }

  ScorpionOptions engine_options = options_.engine;
  engine_options.algorithm = job.algorithm;
  if (job.top_k > 0) engine_options.top_k = job.top_k;
  if (job.match_source != nullptr) {
    engine_options.match_source = job.match_source;
  }
  Scorpion engine(engine_options);
  engine.set_thread_pool(scoring_pool_.get());

  Result<Explanation> result = [&]() -> Result<Explanation> {
    // A caller-pinned session always wins (api::Dataset shares one session
    // between its sync and async paths); otherwise DT jobs go through the
    // keyed cache. ExplainShared ignores the session for non-DT algorithms.
    if (job.session != nullptr) {
      return engine.ExplainShared(*job.table, *job.query_result, job.problem,
                                  job.session.get(),
                                  options_.cross_c_warm_start);
    }
    if (options_.cache_enabled && job.algorithm == Algorithm::kDT) {
      std::shared_ptr<ExplainSession> session = SessionFor(ProblemKey(job));
      return engine.ExplainShared(*job.table, *job.query_result, job.problem,
                                  session.get(), options_.cross_c_warm_start);
    }
    return engine.Explain(*job.table, *job.query_result, job.problem);
  }();

  if (result.ok()) {
    ++stats_.completed;
    if (result->cache_partitions_hit) ++stats_.cache_partition_hits;
    if (result->cache_result_hit) ++stats_.cache_result_hits;
    stats_.blocks_pruned += result->scorer_stats.blocks_pruned_none.load() +
                            result->scorer_stats.blocks_pruned_all.load();
    stats_.rows_skipped_by_pruning +=
        result->scorer_stats.rows_skipped_by_pruning.load();
    if (result->session_delta_refreshed) ++stats_.sessions_delta_refreshed;
    stats_.tail_rows_scanned +=
        result->scorer_stats.tail_rows_scanned.load();
    stats_.RecordLatency(std::chrono::duration<double>(
                             Job::Clock::now() - item.enqueue_time)
                             .count());
  } else {
    ++stats_.failed;
  }
  item.promise.set_value(std::move(result));
}

}  // namespace scorpion
