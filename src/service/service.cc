#include "service/service.h"

#include <chrono>
#include <cstdio>
#include <utility>

namespace scorpion {

namespace {

/// Exact (bit-preserving) double rendering for key strings.
void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a,", v);
  *out += buf;
}

/// Session key: everything that fixes the DT partitioning and the merge
/// inputs except c — the identity of the (borrowed) table and query result,
/// the algorithm, and the problem annotations/knobs. Requests agreeing on
/// this key can share cached partitions at any c.
std::string ProblemKey(const Request& request) {
  std::string key;
  char head[96];
  std::snprintf(head, sizeof(head), "%p|%p|%d|%d|",
                static_cast<const void*>(request.table),
                static_cast<const void*>(request.query_result),
                static_cast<int>(request.algorithm),
                static_cast<int>(request.problem.influence_mode));
  key += head;
  AppendDouble(&key, request.problem.lambda);
  key += "o:";
  for (int idx : request.problem.outliers) {
    key += std::to_string(idx);
    key += ',';
  }
  key += "h:";
  for (int idx : request.problem.holdouts) {
    key += std::to_string(idx);
    key += ',';
  }
  key += "e:";
  for (double ev : request.problem.error_vectors) AppendDouble(&key, ev);
  key += "a:";
  for (const std::string& attr : request.problem.attributes) {
    key += attr;
    key += '\x1f';
  }
  return key;
}

}  // namespace

ExplanationService::ExplanationService(ServiceOptions options)
    : options_(std::move(options)),
      scheduler_(SchedulerOptions{options_.max_queue_depth}) {
  if (options_.num_workers < 0) options_.num_workers = 0;
  if (options_.session_cache_capacity == 0) options_.session_cache_capacity = 1;
  int scoring_threads = options_.engine.num_threads;
  if (scoring_threads == 0) scoring_threads = ThreadPool::DefaultNumThreads();
  if (scoring_threads > 1) {
    scoring_pool_ = std::make_unique<ThreadPool>(scoring_threads);
  }
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ExplanationService::~ExplanationService() { Shutdown(); }

Response ExplanationService::Submit(Request request) {
  Response response;
  response.id = next_id_.fetch_add(1, std::memory_order_relaxed);

  ScheduledRequest item;
  item.id = response.id;
  item.enqueue_time = Request::Clock::now();
  item.request = std::move(request);
  response.future = item.promise.get_future();

  // Fail fast before the request occupies queue space.
  if (item.request.table == nullptr || item.request.query_result == nullptr) {
    ++stats_.failed;
    item.promise.set_value(
        Status::InvalidArgument("request needs a table and a query result"));
    return response;
  }
  ProblemSpec problem = item.request.problem;
  problem.c = item.request.c;
  Status valid = problem.Validate(*item.request.query_result);
  if (!valid.ok()) {
    ++stats_.failed;
    item.promise.set_value(std::move(valid));
    return response;
  }

  switch (scheduler_.Enqueue(std::move(item))) {
    case AdmissionResult::kAdmitted:
      ++stats_.submitted;
      break;
    case AdmissionResult::kAdmittedEvictedWorst:
      ++stats_.submitted;
      ++stats_.shed;
      break;
    case AdmissionResult::kShed:
      ++stats_.shed;
      break;
    case AdmissionResult::kShutdown:
      ++stats_.cancelled;
      break;
  }
  return response;
}

std::vector<Response> ExplanationService::SubmitBatch(
    std::vector<Request> requests) {
  // Stable-group by session key so each key's first request computes the
  // shared state (DT partitions) and the rest of its group arrives while it
  // is fresh; responses keep the input order.
  std::vector<std::vector<size_t>> groups;
  std::unordered_map<std::string, size_t> group_of_key;
  for (size_t i = 0; i < requests.size(); ++i) {
    const std::string key = ProblemKey(requests[i]);
    auto [it, inserted] = group_of_key.emplace(key, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(i);
  }

  std::vector<Response> responses(requests.size());
  for (const std::vector<size_t>& group : groups) {
    for (size_t i : group) {
      responses[i] = Submit(std::move(requests[i]));
    }
  }
  return responses;
}

void ExplanationService::InvalidateSessions() {
  std::unique_lock<std::shared_mutex> lock(sessions_mu_);
  sessions_.clear();
}

bool ExplanationService::Cancel(uint64_t id) {
  if (scheduler_.Cancel(id)) {
    ++stats_.cancelled;
    return true;
  }
  return false;
}

void ExplanationService::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (shutdown_) return;
  stats_.cancelled += scheduler_.Shutdown();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  shutdown_ = true;
}

ServiceStatsSnapshot ExplanationService::stats() const {
  return stats_.Snapshot(scheduler_.depth());
}

std::shared_ptr<ExplainSession> ExplanationService::SessionFor(
    const std::string& key) {
  const uint64_t stamp = use_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::shared_lock<std::shared_mutex> lock(sessions_mu_);
    auto it = sessions_.find(key);
    if (it != sessions_.end()) {
      it->second->last_used.store(stamp, std::memory_order_relaxed);
      return it->second->session;
    }
  }
  std::unique_lock<std::shared_mutex> lock(sessions_mu_);
  auto it = sessions_.find(key);
  if (it != sessions_.end()) {
    it->second->last_used.store(stamp, std::memory_order_relaxed);
    return it->second->session;
  }
  if (sessions_.size() >= options_.session_cache_capacity) {
    // Evict the least-recently-used key. Requests already holding the
    // session keep it alive through their shared_ptr.
    auto victim = sessions_.begin();
    for (auto cand = sessions_.begin(); cand != sessions_.end(); ++cand) {
      if (cand->second->last_used.load(std::memory_order_relaxed) <
          victim->second->last_used.load(std::memory_order_relaxed)) {
        victim = cand;
      }
    }
    sessions_.erase(victim);
  }
  auto entry = std::make_shared<SessionEntry>();
  entry->last_used.store(stamp, std::memory_order_relaxed);
  std::shared_ptr<ExplainSession> session = entry->session;
  sessions_.emplace(key, std::move(entry));
  return session;
}

void ExplanationService::WorkerLoop() {
  ScheduledRequest item;
  while (scheduler_.Pop(&item)) {
    Execute(std::move(item));
  }
}

void ExplanationService::Execute(ScheduledRequest item) {
  const Request& req = item.request;
  if (req.deadline != Request::kNoDeadline &&
      Request::Clock::now() >= req.deadline) {
    ++stats_.deadline_expired;
    item.promise.set_value(
        Status::DeadlineExceeded("deadline passed before the request ran"));
    return;
  }

  ScorpionOptions engine_options = options_.engine;
  engine_options.algorithm = req.algorithm;
  Scorpion engine(engine_options);
  engine.set_thread_pool(scoring_pool_.get());

  ProblemSpec problem = req.problem;
  problem.c = req.c;

  Result<Explanation> result = [&]() -> Result<Explanation> {
    if (options_.cache_enabled && req.algorithm == Algorithm::kDT) {
      std::shared_ptr<ExplainSession> session = SessionFor(ProblemKey(req));
      return engine.ExplainShared(*req.table, *req.query_result, problem,
                                  session.get(), options_.cross_c_warm_start);
    }
    return engine.Explain(*req.table, *req.query_result, problem);
  }();

  if (result.ok()) {
    ++stats_.completed;
    if (result->cache_partitions_hit) ++stats_.cache_partition_hits;
    if (result->cache_result_hit) ++stats_.cache_result_hits;
    stats_.RecordLatency(std::chrono::duration<double>(
                             Request::Clock::now() - item.enqueue_time)
                             .count());
  } else {
    ++stats_.failed;
  }
  item.promise.set_value(std::move(result));
}

}  // namespace scorpion
