// Per-service counters and latency tracking for the ExplanationService,
// consumed by tests and bench_service_throughput.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/atomic_counter.h"
#include "common/failpoint.h"
#include "common/mutex.h"

namespace scorpion {

/// \brief Point-in-time view of the service's traffic.
struct ServiceStatsSnapshot {
  uint64_t submitted = 0;          // accepted into the queue
  uint64_t completed = 0;          // future fulfilled with an Explanation
  uint64_t failed = 0;             // engine returned an error Status
  uint64_t shed = 0;               // rejected/evicted on admission (queue full)
  uint64_t cancelled = 0;          // removed via Cancel() or shutdown
  uint64_t deadline_expired = 0;   // deadline passed before the run started
  uint64_t cache_partition_hits = 0;  // runs served DT partitions from cache
  uint64_t cache_result_hits = 0;     // runs served the full merged result
  // Zone-map pruning totals summed over completed runs' ScorerStats (which
  // are exact per run — each run's scorer owns its counter sink): blocks
  // answered from statistics alone (NONE skipped + ALL word-filled) and
  // the rows whose column data was never read.
  uint64_t blocks_pruned = 0;
  uint64_t rows_skipped_by_pruning = 0;
  // Distributed data plane (src/distributed/): workers declared dead
  // (missed heartbeats or exhausted request retries), lost workers
  // readmitted by the heartbeat thread's re-probe loop after a successful
  // ping + catalog re-publication, block ranges re-dispatched to surviving
  // workers after a failure, and total frame bytes (headers included)
  // exchanged with workers.
  uint64_t workers_lost = 0;
  uint64_t workers_recovered = 0;
  uint64_t ranges_redispatched = 0;
  uint64_t bytes_on_wire = 0;
  // Process-wide fault-injection fires (common/failpoint.h), sampled from
  // the registry at Snapshot() time. Always 0 in a default build — CI
  // gates on it.
  uint64_t failpoints_tripped = 0;
  // Live-table ingest plane (src/storage/): generations published through
  // LiveDataset::Refresh, runs whose session match caches were rebuilt by
  // extending the previous generation's Selections instead of refiltering
  // from row zero, and the delta rows (past each seed's old high-water
  // mark) those extensions actually scanned.
  uint64_t snapshot_generations_published = 0;
  uint64_t sessions_delta_refreshed = 0;
  uint64_t tail_rows_scanned = 0;
  size_t queue_depth = 0;          // requests waiting right now
  double p50_latency_seconds = 0.0;  // submit-to-completion, completed only
  double p95_latency_seconds = 0.0;

  /// Fraction of completed runs that reused session state (either layer).
  double CacheHitRate() const {
    return completed == 0
               ? 0.0
               : static_cast<double>(cache_partition_hits + cache_result_hits) /
                     static_cast<double>(completed);
  }
};

/// \brief Mutable counters updated by the service's producer and worker
/// threads; Snapshot() assembles the exported view.
class ServiceStats {
 public:
  RelaxedCounter submitted;
  RelaxedCounter completed;
  RelaxedCounter failed;
  RelaxedCounter shed;
  RelaxedCounter cancelled;
  RelaxedCounter deadline_expired;
  RelaxedCounter cache_partition_hits;
  RelaxedCounter cache_result_hits;
  RelaxedCounter blocks_pruned;
  RelaxedCounter rows_skipped_by_pruning;
  RelaxedCounter workers_lost;
  RelaxedCounter workers_recovered;
  RelaxedCounter ranges_redispatched;
  RelaxedCounter bytes_on_wire;
  RelaxedCounter snapshot_generations_published;
  RelaxedCounter sessions_delta_refreshed;
  RelaxedCounter tail_rows_scanned;

  /// Records one completed request's submit-to-completion latency. Samples
  /// live in a fixed-size ring, so quantiles cover the most recent
  /// kMaxLatencySamples completions and memory stays bounded on
  /// long-running services.
  void RecordLatency(double seconds) {
    MutexLock lock(mu_);
    if (latencies_.size() < kMaxLatencySamples) {
      latencies_.push_back(seconds);
    } else {
      latencies_[write_pos_] = seconds;
      write_pos_ = (write_pos_ + 1) % kMaxLatencySamples;
    }
  }

  ServiceStatsSnapshot Snapshot(size_t queue_depth) const {
    ServiceStatsSnapshot snap;
    snap.submitted = submitted.load();
    snap.completed = completed.load();
    snap.failed = failed.load();
    snap.shed = shed.load();
    snap.cancelled = cancelled.load();
    snap.deadline_expired = deadline_expired.load();
    snap.cache_partition_hits = cache_partition_hits.load();
    snap.cache_result_hits = cache_result_hits.load();
    snap.blocks_pruned = blocks_pruned.load();
    snap.rows_skipped_by_pruning = rows_skipped_by_pruning.load();
    snap.workers_lost = workers_lost.load();
    snap.workers_recovered = workers_recovered.load();
    snap.ranges_redispatched = ranges_redispatched.load();
    snap.failpoints_tripped = failpoints::TotalTripped();
    snap.bytes_on_wire = bytes_on_wire.load();
    snap.snapshot_generations_published =
        snapshot_generations_published.load();
    snap.sessions_delta_refreshed = sessions_delta_refreshed.load();
    snap.tail_rows_scanned = tail_rows_scanned.load();
    snap.queue_depth = queue_depth;
    std::vector<double> sorted;
    {
      MutexLock lock(mu_);
      sorted = latencies_;
    }
    std::sort(sorted.begin(), sorted.end());
    snap.p50_latency_seconds = QuantileOfSorted(sorted, 0.50);
    snap.p95_latency_seconds = QuantileOfSorted(sorted, 0.95);
    return snap;
  }

 private:
  static constexpr size_t kMaxLatencySamples = 4096;

  /// Nearest-rank quantile of an ascending-sorted sample.
  static double QuantileOfSorted(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size()));
    return sorted[std::min(rank, sorted.size() - 1)];
  }

  mutable Mutex mu_;
  std::vector<double> latencies_ SCORPION_GUARDED_BY(mu_);
  size_t write_pos_ SCORPION_GUARDED_BY(mu_) = 0;
};

}  // namespace scorpion
