// Job/Response types for the ExplanationService: one explanation job — the
// *resolved* problem instance plus serving metadata — and the future the
// caller redeems for the result.
//
// A Job carries exactly one cardinality exponent: `problem.c`. (Its
// predecessor, the old service Request, carried a second `c` field that
// silently overrode `problem.c` — a footgun the typed API removed. Callers
// wanting mixed-c streams over one annotation set copy the ProblemSpec and
// set `problem.c` per job, which is what api::Dataset does for them.)
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <memory>

#include "common/result.h"
#include "core/options.h"
#include "core/problem.h"
#include "core/scorpion.h"
#include "query/groupby.h"
#include "table/table.h"

namespace scorpion {

struct TableSnapshot;

/// \brief One explanation job submitted to the ExplanationService.
///
/// `table` and `query_result` are borrowed: they must stay alive until the
/// response future is ready (the service never copies table data). Jobs
/// sharing the same table, query result, problem annotations and algorithm
/// form one session key and share cached DT partitions / merged results.
/// The key identifies the table and query result by address, so before
/// freeing a served table and reusing its storage, call
/// ExplanationService::InvalidateSessions() (or keep the table alive for
/// the service's lifetime) — a new table at a recycled address would
/// otherwise be served the old table's cached results.
struct Job {
  using Clock = std::chrono::steady_clock;
  /// Sentinel meaning "no deadline".
  static constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

  const Table* table = nullptr;
  const QueryResult* query_result = nullptr;
  /// Optional shared ownership of `query_result`: when set, the result
  /// outlives the job even if every caller-side handle is dropped mid-
  /// flight (api::Dataset pins its result here; the table stays borrowed).
  std::shared_ptr<const QueryResult> query_result_owner;
  /// Optional generation pin for live tables: when `table` points into a
  /// published TableSnapshot (see storage/live_table.h), holding the
  /// snapshot here keeps that frozen generation alive until the future is
  /// fulfilled, even after newer generations publish and the LiveDataset
  /// moves on. Null for plain static tables.
  std::shared_ptr<const TableSnapshot> snapshot;
  /// The resolved problem instance. `problem.c` is the cardinality exponent
  /// this job runs at — there is no override.
  ProblemSpec problem;
  Algorithm algorithm = Algorithm::kDT;
  /// Ranked predicates to return; 0 keeps the service's engine default.
  size_t top_k = 0;
  /// Higher-priority jobs are dequeued first.
  int priority = 0;
  /// Jobs not started by this instant complete with
  /// Status::DeadlineExceeded instead of running.
  Clock::time_point deadline = kNoDeadline;
  /// Optional caller-pinned session (api::Dataset pins its own so sync and
  /// async explains share one cache). When null, the service's keyed
  /// session cache supplies one.
  std::shared_ptr<ExplainSession> session;
  /// Optional remote match-set data plane for this job (see
  /// ScorpionOptions::match_source). Not owned; must outlive the response
  /// future. The distributed Coordinator submits jobs with itself here.
  PredicateMatchSource* match_source = nullptr;

  /// Sets the deadline relative to now. Rejects negative or non-finite
  /// seconds with InvalidArgument (a negative deadline would silently
  /// dead-letter the job) and leaves the deadline unchanged on error.
  /// Deadlines beyond ~31 years are indistinguishable from none and become
  /// kNoDeadline — the double-to-integral duration cast would otherwise be
  /// undefined behaviour for huge finite values.
  Status set_deadline_after(double seconds) {
    if (!std::isfinite(seconds) || seconds < 0.0) {
      return Status::InvalidArgument(
          "deadline seconds must be finite and non-negative");
    }
    if (seconds >= 1e9) {
      deadline = kNoDeadline;
      return Status::OK();
    }
    deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(seconds));
    return Status::OK();
  }
};

/// \brief Handle for a submitted job.
///
/// The future becomes ready with the Explanation, or with an error Status:
///   - DeadlineExceeded: the deadline passed before the job ran.
///   - Unavailable: shed on admission (queue full).
///   - Cancelled: Cancel(id) or service shutdown removed it from the queue.
struct Response {
  /// Service-unique id, usable with ExplanationService::Cancel().
  uint64_t id = 0;
  std::future<Result<Explanation>> future;
};

}  // namespace scorpion
