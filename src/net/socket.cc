#include "net/socket.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/failpoint.h"

namespace scorpion {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

bool IsTimeout(int err) { return err == EAGAIN || err == EWOULDBLOCK; }

Status SetSocketTimeout(int fd, int optname, double seconds) {
  if (seconds < 0.0) {
    return Status::InvalidArgument("socket timeout must be non-negative");
  }
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  if (setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(timeout)");
  }
  return Status::OK();
}

/// getaddrinfo over host + numeric port; caller owns the returned list.
Result<struct addrinfo*> Resolve(const std::string& host, int port,
                                 bool passive) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (passive) hints.ai_flags = AI_PASSIVE;
  struct addrinfo* list = nullptr;
  int rc = getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                       &list);
  if (rc != 0) {
    return Status::IOError("resolve " + host + ":" + std::to_string(port) +
                           ": " + gai_strerror(rc));
  }
  return list;
}

}  // namespace

// --- Conn --------------------------------------------------------------------

Conn::~Conn() { Close(); }

Conn::Conn(Conn&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      bytes_sent_(std::exchange(other.bytes_sent_, 0)),
      bytes_received_(std::exchange(other.bytes_received_, 0)) {}

Conn& Conn::operator=(Conn&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    bytes_sent_ = std::exchange(other.bytes_sent_, 0);
    bytes_received_ = std::exchange(other.bytes_received_, 0);
  }
  return *this;
}

void Conn::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Conn::ShutdownRW() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<Conn> Conn::Dial(const std::string& host, int port,
                        double timeout_seconds) {
  SCORPION_ASSIGN_OR_RETURN(struct addrinfo * list,
                            Resolve(host, port, /*passive=*/false));
  Status last = Status::IOError("no addresses for " + host);
  int fd = -1;
  for (struct addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    // A connect timeout needs non-blocking connect + poll; for the small
    // trusted deployments this transport serves, the send timeout doubles
    // as the connect bound (SO_SNDTIMEO applies to blocking connect on
    // Linux).
    Status st = SetSocketTimeout(fd, SO_SNDTIMEO, timeout_seconds);
    if (st.ok() && ::connect(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
      st = IsTimeout(errno) || errno == EINPROGRESS
               ? Status::DeadlineExceeded("connect to " + host + ":" +
                                          std::to_string(port) + " timed out")
               : Errno("connect " + host + ":" + std::to_string(port));
    }
    if (!st.ok()) {
      ::close(fd);
      fd = -1;
      last = std::move(st);
      continue;
    }
    break;
  }
  freeaddrinfo(list);
  if (fd < 0) return last;
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Conn conn(fd);
  SCORPION_RETURN_NOT_OK(conn.SetTimeout(timeout_seconds));
  return conn;
}

Status Conn::SetTimeout(double seconds) {
  if (fd_ < 0) return Status::IOError("SetTimeout on a closed connection");
  SCORPION_RETURN_NOT_OK(SetSocketTimeout(fd_, SO_RCVTIMEO, seconds));
  return SetSocketTimeout(fd_, SO_SNDTIMEO, seconds);
}

Status Conn::WriteFrame(const std::string& payload) {
  if (fd_ < 0) return Status::IOError("write on a closed connection");
  std::string frame = EncodeFrame(payload);
  size_t limit = frame.size();
  // Frame-aware failpoint: `corrupt` flips a payload byte (the receiver
  // sees an in-sync but garbage frame), `truncate` sends a prefix and
  // shuts the socket down (the receiver sees a connection closed
  // mid-frame). Both surface locally as a clean error so the caller
  // declares the connection lost.
  SCORPION_FAILPOINT_HIT("net.write_frame", fp_hit);
  switch (fp_hit.kind) {
    case FailpointHit::Kind::kNone:
      break;
    case FailpointHit::Kind::kStatus:
      return fp_hit.status;
    case FailpointHit::Kind::kCrash:
      failpoints::CrashNow("net.write_frame");
    case FailpointHit::Kind::kCorruptFrame:
      frame[frame.size() > kFrameHeaderSize ? kFrameHeaderSize : 0] ^=
          static_cast<char>(0xFF);
      break;
    case FailpointHit::Kind::kTruncateFrame:
      limit = frame.size() > kFrameHeaderSize
                  ? kFrameHeaderSize + (frame.size() - kFrameHeaderSize) / 2
                  : frame.size() / 2;
      break;
  }
  size_t sent = 0;
  while (sent < limit) {
    // MSG_NOSIGNAL: a peer that died mid-write surfaces as EPIPE instead of
    // killing the process with SIGPIPE.
    ssize_t n = ::send(fd_, frame.data() + sent, limit - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (IsTimeout(errno)) {
        return Status::DeadlineExceeded("frame write timed out");
      }
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
    bytes_sent_ += static_cast<uint64_t>(n);
  }
  if (limit < frame.size()) {
    ShutdownRW();
    return Status::IOError(
        "failpoint 'net.write_frame' truncated frame mid-send");
  }
  return Status::OK();
}

Status Conn::ReadFully(uint8_t* out, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd_, out + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (IsTimeout(errno)) {
        return Status::DeadlineExceeded("frame read timed out");
      }
      return Errno("recv");
    }
    if (r == 0) {
      return Status::IOError(got == 0 ? "connection closed by peer"
                                      : "connection closed mid-frame");
    }
    got += static_cast<size_t>(r);
    bytes_received_ += static_cast<uint64_t>(r);
  }
  return Status::OK();
}

Result<std::string> Conn::ReadFrame(const FrameLimits& limits) {
  if (fd_ < 0) return Status::IOError("read on a closed connection");
  // Read-side failpoint: `error` simulates a short read / receive timeout
  // before touching the socket; `corrupt` delivers the real frame with a
  // flipped payload byte; `truncate` delivers only a prefix of the payload.
  SCORPION_FAILPOINT_HIT("net.read_frame", fp_hit);
  if (fp_hit.kind == FailpointHit::Kind::kStatus) return fp_hit.status;
  if (fp_hit.kind == FailpointHit::Kind::kCrash) {
    failpoints::CrashNow("net.read_frame");
  }
  uint8_t header[kFrameHeaderSize];
  SCORPION_RETURN_NOT_OK(ReadFully(header, kFrameHeaderSize));
  SCORPION_ASSIGN_OR_RETURN(size_t len,
                            DecodeFrameHeader(header, kFrameHeaderSize, limits));
  std::string payload;
  payload.resize(len);
  if (len > 0) {
    SCORPION_RETURN_NOT_OK(
        ReadFully(reinterpret_cast<uint8_t*>(payload.data()), len));
  }
  if (fp_hit.kind == FailpointHit::Kind::kCorruptFrame && !payload.empty()) {
    payload[0] = static_cast<char>(payload[0] ^ 0xFF);
  } else if (fp_hit.kind == FailpointHit::Kind::kTruncateFrame) {
    payload.resize(payload.size() / 2);
  }
  return payload;
}

// --- Listener ----------------------------------------------------------------

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(std::exchange(other.port_, 0)) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

Result<Listener> Listener::Listen(const std::string& host, int port) {
  SCORPION_ASSIGN_OR_RETURN(struct addrinfo * list,
                            Resolve(host, port, /*passive=*/true));
  Status last = Status::IOError("no addresses for " + host);
  int fd = -1;
  for (struct addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 || ::listen(fd, 16) != 0) {
      last = Errno("bind/listen " + host + ":" + std::to_string(port));
      ::close(fd);
      fd = -1;
      continue;
    }
    break;
  }
  freeaddrinfo(list);
  if (fd < 0) return last;
  // Resolve the actual port (meaningful when asked for port 0).
  struct sockaddr_storage addr;
  socklen_t addr_len = sizeof(addr);
  int bound_port = port;
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &addr_len) ==
      0) {
    if (addr.ss_family == AF_INET) {
      bound_port =
          ntohs(reinterpret_cast<struct sockaddr_in*>(&addr)->sin_port);
    } else if (addr.ss_family == AF_INET6) {
      bound_port =
          ntohs(reinterpret_cast<struct sockaddr_in6*>(&addr)->sin6_port);
    }
  }
  return Listener(fd, bound_port);
}

Result<Conn> Listener::Accept() {
  if (fd_ < 0) return Status::Cancelled("listener is shut down");
  SCORPION_FAILPOINT("net.accept");
  while (true) {
    int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd >= 0) {
      int one = 1;
      setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Conn(cfd);
    }
    if (errno == EINTR) continue;
    // Shutdown() wakes a blocked accept with EINVAL (Linux); a closed or
    // invalidated fd surfaces as EBADF. Both mean "stop accepting".
    if (errno == EINVAL || errno == EBADF) {
      return Status::Cancelled("listener is shut down");
    }
    return Errno("accept");
  }
}

void Listener::Shutdown() {
  // shutdown() rather than close(): the fd stays valid (no reuse race with
  // a concurrently blocked Accept), which then wakes and reports Cancelled.
  // The destructor closes the fd.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace scorpion
