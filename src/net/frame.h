// Length-prefixed framing for the distributed wire: every message is one
// JSON payload wrapped in an 8-byte header — a 4-byte magic ("SCP1") and a
// 4-byte big-endian payload length. The magic catches peers speaking the
// wrong protocol (or a stream that lost sync) before a bogus length is
// trusted; the length cap bounds what a single frame can make the receiver
// allocate. Header encode/decode is pure (no sockets), so the framing edge
// cases — truncated, oversized, garbage-prefixed — are unit-testable
// without I/O.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"

namespace scorpion {

/// Frame header size: 4 magic bytes + u32 big-endian payload length.
inline constexpr size_t kFrameHeaderSize = 8;

/// Protocol magic, first on the wire in every frame.
inline constexpr char kFrameMagic[4] = {'S', 'C', 'P', '1'};

/// \brief Receiver-side resource caps for one frame.
struct FrameLimits {
  /// Largest payload a peer may send; larger lengths are rejected at the
  /// header, before any payload is read or allocated.
  size_t max_payload_bytes = 64u << 20;  // 64 MiB
};

/// Writes the header for a `payload_size`-byte payload into `out`
/// (kFrameHeaderSize bytes). `payload_size` must fit in 32 bits.
void EncodeFrameHeader(size_t payload_size, uint8_t* out);

/// Decodes a header from `data` (`n` bytes available). Errors:
/// InvalidArgument("truncated...") when n < kFrameHeaderSize,
/// InvalidArgument("bad frame magic...") on a garbage prefix, and
/// InvalidArgument("oversized...") when the length exceeds the limit.
/// On success returns the payload length.
Result<size_t> DecodeFrameHeader(const uint8_t* data, size_t n,
                                 const FrameLimits& limits);

/// One complete frame (header + payload) as a byte string, ready to write.
/// CHECK-fails if the payload exceeds 32 bits (callers cap payloads far
/// below that via FrameLimits on the peer).
std::string EncodeFrame(const std::string& payload);

}  // namespace scorpion
