#include "net/frame.h"

#include <cstring>

#include "common/macros.h"

namespace scorpion {

void EncodeFrameHeader(size_t payload_size, uint8_t* out) {
  SCORPION_CHECK(payload_size <= 0xFFFFFFFFu,
                 "frame payload exceeds the 32-bit length field");
  std::memcpy(out, kFrameMagic, sizeof(kFrameMagic));
  uint32_t len = static_cast<uint32_t>(payload_size);
  out[4] = static_cast<uint8_t>(len >> 24);
  out[5] = static_cast<uint8_t>(len >> 16);
  out[6] = static_cast<uint8_t>(len >> 8);
  out[7] = static_cast<uint8_t>(len);
}

Result<size_t> DecodeFrameHeader(const uint8_t* data, size_t n,
                                 const FrameLimits& limits) {
  if (n < kFrameHeaderSize) {
    return Status::InvalidArgument(
        "truncated frame header: " + std::to_string(n) + " of " +
        std::to_string(kFrameHeaderSize) + " bytes");
  }
  if (std::memcmp(data, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return Status::InvalidArgument(
        "bad frame magic: peer is not speaking the scorpion wire protocol");
  }
  size_t len = (static_cast<size_t>(data[4]) << 24) |
               (static_cast<size_t>(data[5]) << 16) |
               (static_cast<size_t>(data[6]) << 8) | static_cast<size_t>(data[7]);
  if (len > limits.max_payload_bytes) {
    return Status::InvalidArgument(
        "oversized frame: " + std::to_string(len) + " bytes exceeds the " +
        std::to_string(limits.max_payload_bytes) + "-byte payload cap");
  }
  return len;
}

std::string EncodeFrame(const std::string& payload) {
  std::string out;
  out.resize(kFrameHeaderSize);
  EncodeFrameHeader(payload.size(), reinterpret_cast<uint8_t*>(out.data()));
  out += payload;
  return out;
}

}  // namespace scorpion
