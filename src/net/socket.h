// Minimal blocking TCP for the distributed service: a connection that
// exchanges length-prefixed frames (net/frame.h) with read/write timeouts,
// and a listener that accepts them. POSIX sockets only — the transport is
// deliberately tiny (scatter/gather RPC between a coordinator and a handful
// of workers on a trusted network), not a general networking layer.
//
// Threading: a Conn is not internally synchronized. One thread may use it,
// or callers serialize (the Coordinator guards each worker's Conn with a
// mutex). A Listener's Accept may block in one thread while Shutdown is
// called from another — that is the supported way to stop an accept loop.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/macros.h"
#include "common/result.h"
#include "net/frame.h"

namespace scorpion {

/// \brief One established TCP connection exchanging frames.
class Conn {
 public:
  Conn() = default;
  ~Conn();

  Conn(Conn&& other) noexcept;
  Conn& operator=(Conn&& other) noexcept;
  SCORPION_DISALLOW_COPY_AND_ASSIGN(Conn);

  /// Connects to host:port (numeric or resolvable host). IOError on failure.
  static Result<Conn> Dial(const std::string& host, int port,
                           double timeout_seconds);

  bool ok() const { return fd_ >= 0; }

  /// Applies `seconds` as both the receive and send timeout for subsequent
  /// frame operations (0 = block forever).
  Status SetTimeout(double seconds);

  /// Writes one complete frame. IOError on a broken connection,
  /// DeadlineExceeded when the send timeout expires.
  Status WriteFrame(const std::string& payload);

  /// Reads one complete frame payload. IOError when the peer closed or the
  /// stream broke, DeadlineExceeded on timeout, InvalidArgument on a
  /// malformed or over-limit header (see DecodeFrameHeader) — after which
  /// the stream is out of sync and the connection should be dropped.
  Result<std::string> ReadFrame(const FrameLimits& limits);

  /// Total bytes written / read over this connection (headers included).
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

  void Close();

  /// Half-closes both directions without releasing the fd, waking any
  /// thread blocked in ReadFrame on this connection (it sees "connection
  /// closed"). Safe to call from another thread while that read is in
  /// flight — the fd stays valid, so there is no reuse race; Close() (or
  /// the destructor) still runs afterwards to release it.
  void ShutdownRW();

 private:
  friend class Listener;
  explicit Conn(int fd) : fd_(fd) {}

  /// Reads exactly `n` bytes into `out`.
  Status ReadFully(uint8_t* out, size_t n);

  int fd_ = -1;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

/// \brief Listening socket accepting Conns.
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  SCORPION_DISALLOW_COPY_AND_ASSIGN(Listener);

  /// Binds and listens on host:port. Port 0 picks an ephemeral port —
  /// read it back with port().
  static Result<Listener> Listen(const std::string& host, int port);

  bool ok() const { return fd_ >= 0; }

  /// The bound port (resolved after Listen, also for port 0).
  int port() const { return port_; }

  /// Blocks until a connection arrives. Cancelled when Shutdown() closed
  /// the socket, IOError on other failures.
  Result<Conn> Accept();

  /// Unblocks a concurrent Accept() (which then returns Cancelled) and
  /// closes the listening socket. Safe to call from another thread.
  void Shutdown();

 private:
  explicit Listener(int fd, int port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  int port_ = 0;
};

}  // namespace scorpion
