// Predicate parsing: the inverse of Predicate::ToString, so predicates can
// round-trip through logs, config files and command lines.
//
// Grammar (case-insensitive keywords, '&' or 'and' between clauses):
//   predicate   := "TRUE" | clause ( ("&" | "and") clause )*
//   clause      := range | set | comparison
//   range       := attr "in" ("["|"(") num "," num ("]"|")")
//   set         := attr "in" "{" value ("," value)* "}"
//   comparison  := attr ("<" | "<=" | ">" | ">=" | "=" | "==") scalar
//   value       := quoted string | bareword | number
//
// Comparisons desugar onto the attribute's domain in `table`:
//   x < 5   ->  x in [min(x), 5)        x >= 5  ->  x in [5, max(x)]
//   s = 'a' ->  s in {'a'}
// Set values are resolved against the column dictionary; unknown values are
// a KeyError (they could never match anyway).
#pragma once

#include <string>

#include "common/result.h"
#include "predicate/predicate.h"
#include "table/table.h"

namespace scorpion {

/// Parses `text` into a Predicate, validating attribute names/types against
/// `table`.
Result<Predicate> ParsePredicate(const std::string& text, const Table& table);

}  // namespace scorpion
