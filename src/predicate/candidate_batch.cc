#include "predicate/candidate_batch.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "predicate/filter_kernels.h"

namespace scorpion {

namespace {

/// Same dispatch threshold as the per-predicate plane (predicate.cc).
constexpr size_t kMinBlocksForParallel = 4;

}  // namespace

// --- CandidateBatch ---------------------------------------------------------

Predicate CandidateBatch::Candidate(size_t i) const {
  if (is_range) {
    RangeClause c = range_variants[i];
    c.attr = attr;
    return base.WithRange(c);
  }
  SetClause c = set_variants[i];
  c.attr = attr;
  return base.WithSet(std::move(c));
}

Result<BoundCandidateBatch> CandidateBatch::Bind(const Table& table) const {
  if (base.HasClauseOn(attr)) {
    return Status::InvalidArgument("batch base already constrains '" + attr +
                                   "'");
  }
  BoundCandidateBatch bound;
  SCORPION_ASSIGN_OR_RETURN(bound.base_, base.Bind(table));
  bound.base_has_clauses_ = !base.IsTrue();
  bound.var_is_range_ = is_range;
  SCORPION_ASSIGN_OR_RETURN(bound.var_col_, table.ColumnIndex(attr));
  const Column& col = table.column(bound.var_col_);
  if (is_range) {
    if (col.type() != DataType::kDouble) {
      return Status::TypeError("range batch on categorical attribute '" +
                               attr + "'");
    }
    bound.var_values_ = &col.doubles();
    bound.range_vars_.reserve(range_variants.size());
    for (const RangeClause& r : range_variants) {
      const bool empty_range =
          r.hi_inclusive ? r.lo > r.hi : r.lo >= r.hi;
      if (empty_range) {
        return Status::InvalidArgument("empty range variant for '" + attr +
                                       "'");
      }
      bound.range_vars_.push_back({r.lo, r.hi, r.hi_inclusive});
    }
  } else {
    if (col.type() != DataType::kCategorical) {
      return Status::TypeError("set batch on continuous attribute '" + attr +
                               "'");
    }
    bound.var_codes_ = &col.codes();
    bound.set_vars_.reserve(set_variants.size());
    for (const SetClause& s : set_variants) {
      if (s.codes.empty()) {
        return Status::InvalidArgument("empty code set variant for '" + attr +
                                       "'");
      }
      BoundCandidateBatch::SetVariant sv;
      sv.member.assign(static_cast<size_t>(col.Cardinality()), 0);
      // Same hash rule as Predicate::Bind and the stats builder.
      sv.exact_bits = sv.member.size() <= kBlockCodeBits;
      std::fill(std::begin(sv.query_bits), std::end(sv.query_bits), 0);
      for (int32_t code : s.codes) {
        if (code >= 0 && static_cast<size_t>(code) < sv.member.size()) {
          sv.member[static_cast<size_t>(code)] = 1;
          const uint32_t bit =
              static_cast<uint32_t>(code) & (kBlockCodeBits - 1);
          sv.query_bits[bit >> 6] |= uint64_t{1} << (bit & 63);
        }
      }
      bound.set_vars_.push_back(std::move(sv));
    }
  }
  bound.num_rows_ = table.num_rows();
  bound.table_ = &table;
  bound.pruning_enabled_ = BlockPruningDefault();
  bound.prune_stats_ = &GlobalBlockPruningStats();
  // Unlike a plain bound predicate, stats are armed even for a TRUE base:
  // every candidate carries at least its variant clause.
  if (bound.num_rows_ > 0) bound.block_stats_ = table.block_stats();
  // Align the shared base with the batch's configuration (the setters keep
  // them in lockstep from here on).
  bound.base_.set_enable_pruning(bound.pruning_enabled_);
  bound.base_.set_pruning_stats(bound.prune_stats_);
  bound.base_.set_thread_pool(nullptr);
  return bound;
}

// --- BoundCandidateBatch ----------------------------------------------------

std::vector<Selection> BoundCandidateBatch::FilterBatch(
    const Selection& input) const {
  SCORPION_CHECK(table_ == nullptr || table_->num_rows() == num_rows_,
                 "BoundCandidateBatch evaluated after its Table was appended "
                 "to; re-Bind() the batch");
  SCORPION_CHECK(input.universe_size() == num_rows_,
                 "FilterBatch input universe does not match the bound table");
  const size_t k = size();
  std::vector<Selection> out(k);
  if (k == 0) return out;
  if (input.IsAll()) return FilterAllBatch();
  const RowIdList& rows = input.rows();
  const size_t n = rows.size();

  // Per-candidate variant kernels over a gathered slice (dense) or the
  // global column (gather); `first` ANDs into an existing base mask.
  auto variant_gather = [&](size_t c, const RowId* r, size_t len, bool first,
                            uint8_t* m) {
    if (var_is_range_) {
      const RangeVariant& v = range_vars_[c];
      kernels::RangeMaskGather(var_values_->data(), r, len, v.lo, v.hi,
                               v.hi_inclusive, first, m);
    } else {
      kernels::SetMaskGather(var_codes_->data(), r, len,
                             set_vars_[c].member.data(), first, m);
    }
  };

  if (!(n > 0 && pruning_enabled_ && block_stats_ != nullptr)) {
    // Unpruned sparse path: the base's gather mask is computed once and
    // shared; each candidate runs only its own variant kernel. The mask
    // bytes are 0/1 and clause order is immaterial to the AND, so each
    // output equals the unbatched all-clauses gather exactly.
    std::vector<uint8_t> base_mask;
    if (base_has_clauses_) {
      base_mask.resize(n);
      base_.FillMaskGather(rows.data(), n, base_mask.data());
    }
    std::vector<uint8_t> mask(n);
    for (size_t c = 0; c < k; ++c) {
      if (base_has_clauses_ && n > 0) {
        std::memcpy(mask.data(), base_mask.data(), n);
      }
      variant_gather(c, rows.data(), n, /*first=*/!base_has_clauses_,
                     mask.data());
      RowIdList matched;
      matched.reserve(kernels::SumMask(mask.data(), n));
      for (size_t i = 0; i < n; ++i) {
        if (mask[i]) matched.push_back(rows[i]);
      }
      out[c] = Selection::FromSorted(std::move(matched), num_rows_);
    }
    if (shared_counter_ != nullptr && base_has_clauses_ && k > 1) {
      *shared_counter_ += k - 1;
    }
    return out;
  }

  // Pruned sparse path. Split the sorted input into per-block spans
  // (function-local: this runs inside engine ParallelFor bodies and may
  // itself dispatch to the pool, so no thread-local scratch anywhere here).
  struct Span {
    size_t block;
    size_t lo, hi;  // index range into `rows`
  };
  std::vector<Span> spans;
  {
    size_t i = 0;
    while (i < n) {
      const size_t b = static_cast<size_t>(rows[i]) / kBlockSize;
      const size_t limit = (b + 1) * kBlockSize;
      const size_t j = static_cast<size_t>(
          std::partition_point(
              rows.begin() + static_cast<ptrdiff_t>(i), rows.end(),
              [&](RowId r) { return static_cast<size_t>(r) < limit; }) -
          rows.begin());
      spans.push_back({b, i, j});
      i = j;
    }
  }

  BoundPredicate::PruningPlan base_plan;
  const bool base_planned = base_has_clauses_ && base_.PreparePlan(&base_plan);
  const BlockStat* var_stats = block_stats_->ForColumn(var_col_).data();

  // Per-(span, candidate) matched rows, filled in disjoint slots and
  // concatenated serially in span order — bit-identical at every thread
  // count, like the per-predicate plane.
  std::vector<std::vector<RowIdList>> span_rows(spans.size());

  auto do_span = [&](size_t si) {
    const Span& sp = spans[si];
    const size_t len = sp.hi - sp.lo;
    const RowId* srows = rows.data() + sp.lo;
    const size_t b = sp.block;
    const size_t rows_in_block =
        block_stats_->block_end(b) - block_stats_->block_begin(b);
    const BlockMatch bv =
        base_planned ? base_.ClassifyBlock(base_plan, b)
                     : (base_has_clauses_ ? BlockMatch::kPartial
                                          : BlockMatch::kAll);
    std::vector<RowIdList>& outs = span_rows[si];
    outs.resize(k);

    // Classify every candidate x block cell before touching any data. The
    // combined verdict equals classifying the full per-candidate conjunction
    // (CombineBlockMatch), so the pruning counters advance exactly as k
    // unbatched filters would.
    std::vector<BlockMatch> vcell(k), cell(k);
    size_t slice_consumers = 0;
    bool need_base_mask = false;
    for (size_t c = 0; c < k; ++c) {
      vcell[c] =
          var_is_range_
              ? ClassifyRangeBlock(var_stats[b], rows_in_block,
                                   range_vars_[c].lo, range_vars_[c].hi,
                                   range_vars_[c].hi_inclusive)
              : ClassifySetBlock(var_stats[b], set_vars_[c].query_bits,
                                 set_vars_[c].exact_bits);
      cell[c] = CombineBlockMatch(bv, vcell[c]);
      switch (cell[c]) {
        case BlockMatch::kNone:
          ++prune_stats_->blocks_pruned_none;
          prune_stats_->rows_skipped_by_pruning += len;
          break;
        case BlockMatch::kAll:
          ++prune_stats_->blocks_pruned_all;
          prune_stats_->rows_skipped_by_pruning += len;
          outs[c].assign(srows, srows + len);
          break;
        case BlockMatch::kPartial:
          ++prune_stats_->blocks_partial;
          if (vcell[c] != BlockMatch::kAll) ++slice_consumers;
          if (bv == BlockMatch::kPartial) need_base_mask = true;
          break;
      }
    }

    // Base mask once per block; varying-column slice gathered once per
    // block. Every PARTIAL candidate consumes these shared products.
    uint8_t base_mask[kBlockSize];
    if (need_base_mask) base_.FillMaskGather(srows, len, base_mask);
    double dslice[kBlockSize];
    int32_t cslice[kBlockSize];
    if (slice_consumers > 0) {
      if (var_is_range_) {
        for (size_t i = 0; i < len; ++i) {
          dslice[i] = (*var_values_)[srows[i]];
        }
      } else {
        for (size_t i = 0; i < len; ++i) {
          cslice[i] = (*var_codes_)[srows[i]];
        }
      }
      if (shared_counter_ != nullptr && slice_consumers > 1) {
        *shared_counter_ += slice_consumers - 1;
      }
    }

    for (size_t c = 0; c < k; ++c) {
      if (cell[c] != BlockMatch::kPartial) continue;
      const uint8_t* m;
      uint8_t cand_mask[kBlockSize];
      if (vcell[c] == BlockMatch::kAll) {
        // The variant matches the whole block: the base mask IS the
        // candidate's mask (the unbatched kernel would AND all-ones in).
        m = base_mask;
      } else {
        const bool first = bv != BlockMatch::kPartial;
        if (!first) std::memcpy(cand_mask, base_mask, len);
        if (var_is_range_) {
          const RangeVariant& v = range_vars_[c];
          kernels::RangeMaskDense(dslice, len, v.lo, v.hi, v.hi_inclusive,
                                  first, cand_mask);
        } else {
          kernels::SetMaskDense(cslice, len, set_vars_[c].member.data(),
                                first, cand_mask);
        }
        m = cand_mask;
      }
      RowIdList& matched = outs[c];
      for (size_t i = 0; i < len; ++i) {
        if (m[i]) matched.push_back(srows[i]);
      }
    }
  };

  const bool parallel = pool_ != nullptr && !ThreadPool::InParallelBody() &&
                        spans.size() >= kMinBlocksForParallel;
  if (parallel) {
    pool_->ParallelFor(0, spans.size(), do_span);
  } else {
    for (size_t si = 0; si < spans.size(); ++si) do_span(si);
  }

  for (size_t c = 0; c < k; ++c) {
    size_t total = 0;
    for (size_t si = 0; si < spans.size(); ++si) {
      total += span_rows[si][c].size();
    }
    RowIdList matched;
    matched.reserve(total);
    for (size_t si = 0; si < spans.size(); ++si) {
      const RowIdList& piece = span_rows[si][c];
      matched.insert(matched.end(), piece.begin(), piece.end());
    }
    out[c] = Selection::FromSorted(std::move(matched), num_rows_);
  }
  return out;
}

std::vector<Selection> BoundCandidateBatch::FilterAllBatch() const {
  const size_t k = size();
  const size_t n = num_rows_;
  std::vector<Selection> out(k);
  const size_t num_words = (n + 63) / 64;
  std::vector<std::vector<uint64_t>> words(k);
  for (size_t c = 0; c < k; ++c) words[c].assign(num_words, 0);
  std::vector<size_t> counts(k, 0);

  if (pruning_enabled_ && block_stats_ != nullptr) {
    BoundPredicate::PruningPlan base_plan;
    const bool base_planned =
        base_has_clauses_ && base_.PreparePlan(&base_plan);
    const BlockStat* var_stats = block_stats_->ForColumn(var_col_).data();
    const size_t nb = block_stats_->num_blocks();
    // Per-(block, candidate) kept counts in disjoint slots; blocks also own
    // disjoint word ranges of every candidate's bitmap (kBlockSize is a
    // multiple of 64), so the block loop is parallel-safe.
    std::vector<size_t> cell_counts(nb * k, 0);

    auto do_block = [&](size_t b) {
      const size_t begin = block_stats_->block_begin(b);
      const size_t end = block_stats_->block_end(b);
      const size_t len = end - begin;
      const BlockMatch bv =
          base_planned ? base_.ClassifyBlock(base_plan, b)
                       : (base_has_clauses_ ? BlockMatch::kPartial
                                            : BlockMatch::kAll);
      std::vector<BlockMatch> vcell(k), cell(k);
      size_t slice_consumers = 0;
      bool need_base_mask = false;
      for (size_t c = 0; c < k; ++c) {
        vcell[c] =
            var_is_range_
                ? ClassifyRangeBlock(var_stats[b], len, range_vars_[c].lo,
                                     range_vars_[c].hi,
                                     range_vars_[c].hi_inclusive)
                : ClassifySetBlock(var_stats[b], set_vars_[c].query_bits,
                                   set_vars_[c].exact_bits);
        cell[c] = CombineBlockMatch(bv, vcell[c]);
        switch (cell[c]) {
          case BlockMatch::kNone:
            ++prune_stats_->blocks_pruned_none;
            prune_stats_->rows_skipped_by_pruning += len;
            break;
          case BlockMatch::kAll:
            ++prune_stats_->blocks_pruned_all;
            prune_stats_->rows_skipped_by_pruning += len;
            BitmapSetRange(&words[c], begin, end);
            cell_counts[b * k + c] = len;
            break;
          case BlockMatch::kPartial:
            ++prune_stats_->blocks_partial;
            if (vcell[c] != BlockMatch::kAll) ++slice_consumers;
            if (bv == BlockMatch::kPartial) need_base_mask = true;
            break;
        }
      }
      uint8_t base_mask[kBlockSize];
      if (need_base_mask) base_.FillMaskDenseRange(begin, end, base_mask);
      if (shared_counter_ != nullptr && slice_consumers > 1) {
        // Dense kernels stream the block's column region per candidate; the
        // region stays cache-hot across the candidate loop, so every extra
        // consumer is a saved memory pass just like the gathered slice.
        *shared_counter_ += slice_consumers - 1;
      }
      for (size_t c = 0; c < k; ++c) {
        if (cell[c] != BlockMatch::kPartial) continue;
        uint8_t cand_mask[kBlockSize];
        const uint8_t* m;
        if (vcell[c] == BlockMatch::kAll) {
          m = base_mask;
        } else {
          const bool first = bv != BlockMatch::kPartial;
          if (!first) std::memcpy(cand_mask, base_mask, len);
          if (var_is_range_) {
            const RangeVariant& v = range_vars_[c];
            kernels::RangeMaskDense(var_values_->data() + begin, len, v.lo,
                                    v.hi, v.hi_inclusive, first, cand_mask);
          } else {
            kernels::SetMaskDense(var_codes_->data() + begin, len,
                                  set_vars_[c].member.data(), first,
                                  cand_mask);
          }
          m = cand_mask;
        }
        cell_counts[b * k + c] =
            kernels::PackMaskIntoWords(m, begin, end, words[c].data());
      }
    };

    const bool parallel = pool_ != nullptr &&
                          !ThreadPool::InParallelBody() &&
                          nb >= kMinBlocksForParallel;
    if (parallel) {
      pool_->ParallelFor(0, nb, do_block);
    } else {
      for (size_t b = 0; b < nb; ++b) do_block(b);
    }
    for (size_t b = 0; b < nb; ++b) {
      for (size_t c = 0; c < k; ++c) counts[c] += cell_counts[b * k + c];
    }
  } else {
    // Unpruned dense path: whole-column base mask shared by all candidates.
    std::vector<uint8_t> base_mask;
    if (base_has_clauses_) {
      base_mask.resize(n);
      base_.FillMaskDenseRange(0, n, base_mask.data());
    }
    std::vector<uint8_t> mask(n);
    for (size_t c = 0; c < k; ++c) {
      if (base_has_clauses_ && n > 0) {
        std::memcpy(mask.data(), base_mask.data(), n);
      }
      if (var_is_range_) {
        const RangeVariant& v = range_vars_[c];
        kernels::RangeMaskDense(var_values_->data(), n, v.lo, v.hi,
                                v.hi_inclusive, !base_has_clauses_,
                                mask.data());
      } else {
        kernels::SetMaskDense(var_codes_->data(), n,
                              set_vars_[c].member.data(), !base_has_clauses_,
                              mask.data());
      }
      counts[c] =
          kernels::PackMaskIntoWords(mask.data(), 0, n, words[c].data());
    }
    if (shared_counter_ != nullptr && base_has_clauses_ && k > 1) {
      *shared_counter_ += k - 1;
    }
  }

  for (size_t c = 0; c < k; ++c) {
    out[c] =
        Selection::FromBitmapCounted(std::move(words[c]), n, counts[c]);
  }
  return out;
}

// --- Batch planning ---------------------------------------------------------

namespace {

/// The attribute on which `a` and `b` differ by exactly one same-kind,
/// same-position clause (all other clauses identical), or nullopt.
std::optional<std::string> SingleClauseDiff(const Predicate& a,
                                            const Predicate& b) {
  if (a.ranges().size() != b.ranges().size() ||
      a.sets().size() != b.sets().size()) {
    return std::nullopt;
  }
  int diffs = 0;
  std::string attr;
  for (size_t i = 0; i < a.ranges().size(); ++i) {
    const RangeClause& ra = a.ranges()[i];
    const RangeClause& rb = b.ranges()[i];
    if (ra.attr != rb.attr) return std::nullopt;
    if (!(ra == rb)) {
      if (++diffs > 1) return std::nullopt;
      attr = ra.attr;
    }
  }
  for (size_t i = 0; i < a.sets().size(); ++i) {
    const SetClause& sa = a.sets()[i];
    const SetClause& sb = b.sets()[i];
    if (sa.attr != sb.attr) return std::nullopt;
    if (!(sa == sb)) {
      if (++diffs > 1) return std::nullopt;
      attr = sa.attr;
    }
  }
  if (diffs != 1) return std::nullopt;
  return attr;
}

/// Copy of `p` with any clause on `attr` removed.
Predicate WithoutAttr(const Predicate& p, const std::string& attr) {
  Predicate out;
  for (const RangeClause& r : p.ranges()) {
    if (r.attr != attr) out.AddRange(r).ok();
  }
  for (const SetClause& s : p.sets()) {
    if (s.attr != attr) out.AddSet(s).ok();
  }
  return out;
}

}  // namespace

std::vector<CandidateBatchPlan> PlanCandidateBatches(
    const std::vector<Predicate>& preds) {
  std::vector<CandidateBatchPlan> plan;
  const size_t n = preds.size();
  size_t i = 0;
  while (i < n) {
    std::optional<std::string> attr =
        i + 1 < n ? SingleClauseDiff(preds[i], preds[i + 1]) : std::nullopt;
    if (!attr.has_value()) {
      plan.push_back({i, 1, std::nullopt});
      ++i;
      continue;
    }
    CandidateBatch batch;
    batch.attr = *attr;
    batch.base = WithoutAttr(preds[i], *attr);
    batch.is_range = preds[i].FindRange(*attr) != nullptr;
    size_t j = i;
    while (j < n) {
      if (batch.is_range) {
        const RangeClause* r = preds[j].FindRange(*attr);
        if (r == nullptr || !(WithoutAttr(preds[j], *attr) == batch.base)) {
          break;
        }
        batch.range_variants.push_back(*r);
      } else {
        const SetClause* s = preds[j].FindSet(*attr);
        if (s == nullptr || !(WithoutAttr(preds[j], *attr) == batch.base)) {
          break;
        }
        batch.set_variants.push_back(*s);
      }
      ++j;
    }
    // SingleClauseDiff guarantees preds[i] and preds[i+1] both qualify, so
    // j - i >= 2. A batch only wins once the once-per-block gather
    // amortizes across enough variants; measured on the Easy synth
    // workloads the crossover sits at 3 candidates (pairs run ~5-10%
    // SLOWER than two plain filters), so runs of 2 are emitted as
    // singletons and scored through the per-candidate path.
    const size_t run = j - i;
    if (run < kMinProfitableBatch) {
      for (size_t s = 0; s < run; ++s) plan.push_back({i + s, 1, std::nullopt});
    } else {
      plan.push_back({i, run, std::move(batch)});
    }
    i = j;
  }
  return plan;
}

}  // namespace scorpion
