// Candidate-batched predicate evaluation: one pass per block scores a
// whole candidate set.
//
// Search algorithms (NAIVE enumeration, Merger expansion) score many
// predicates that differ in exactly ONE clause on ONE attribute — N
// thresholds on a column, or N categorical code sets. Evaluated one at a
// time, each candidate re-reads every block of every shared clause's column
// and re-gathers the varying column N times. A CandidateBatch factors the
// candidates into a shared base predicate plus per-candidate clause
// variants; BoundCandidateBatch::FilterBatch then
//   1. classifies each candidate x block cell NONE / ALL / PARTIAL before
//      any data is touched, by combining the base's zone-map verdict (one
//      per block) with each variant clause's verdict (CombineBlockMatch —
//      equal to classifying the full conjunction directly);
//   2. loads each PARTIAL block's varying-column slice ONCE and runs the
//      cheap dense kernel per candidate over the in-cache copy;
//   3. evaluates the base's mask once per block and ANDs it into every
//      candidate's mask.
//
// Bit-identity contract (differential-tested in test_candidate_batch.cc):
// FilterBatch()[i] equals Candidate(i).Bind(table)->Filter(input) exactly —
// same rows, same Selection form (vector for sparse inputs, counted bitmap
// for all-rows inputs) — and the pruning counters advance exactly as N
// separate filters would (verdict combination is lossless). The byte masks
// are 0/1-valued and each row's verdict is a pure function of its column
// values, so sharing the base mask and gathering slices cannot change any
// output bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/atomic_counter.h"
#include "common/result.h"
#include "predicate/predicate.h"
#include "table/block_stats.h"
#include "table/selection.h"
#include "table/table.h"

namespace scorpion {

class ThreadPool;
class BoundCandidateBatch;

/// \brief A base predicate plus N single-clause variants on one attribute.
///
/// Candidate i is `base` with the i-th variant clause added on `attr`
/// (exactly Predicate::WithRange / WithSet). `base` must not constrain
/// `attr`; variants must all be on `attr` and match the batch kind.
struct CandidateBatch {
  Predicate base;
  std::string attr;
  bool is_range = true;
  std::vector<RangeClause> range_variants;  // used when is_range
  std::vector<SetClause> set_variants;      // used when !is_range

  size_t size() const {
    return is_range ? range_variants.size() : set_variants.size();
  }

  /// The i-th candidate as a plain Predicate (the unbatched equivalent).
  Predicate Candidate(size_t i) const;

  /// Resolves columns against `table`; validates the base/variant contract.
  Result<BoundCandidateBatch> Bind(const Table& table) const;
};

/// \brief A CandidateBatch with columns resolved against one Table.
///
/// Same lifetime contract as BoundPredicate: valid while the table lives
/// and is not appended to (checked on every FilterBatch call).
class BoundCandidateBatch {
 public:
  size_t size() const {
    return var_is_range_ ? range_vars_.size() : set_vars_.size();
  }

  /// Vectorized: the matching subset of `input` for every candidate, in
  /// candidate order. Each result is bit-identical to what the unbatched
  /// BoundPredicate::Filter would return for that candidate.
  std::vector<Selection> FilterBatch(const Selection& input) const;

  /// Mirrors BoundPredicate::set_enable_pruning; also governs the shared
  /// base's plan. Output is bit-identical either way.
  void set_enable_pruning(bool enabled) {
    pruning_enabled_ = enabled;
    base_.set_enable_pruning(enabled);
  }

  /// Block-parallel evaluation of large inputs (see BoundPredicate).
  void set_thread_pool(ThreadPool* pool) {
    pool_ = pool;
    base_.set_thread_pool(nullptr);  // parallelism lives at the batch level
  }

  /// Redirects pruning counters (advanced per candidate x block cell, so
  /// they match N unbatched filters exactly).
  void set_pruning_stats(BlockPruningStats* stats) {
    prune_stats_ = stats;
    base_.set_pruning_stats(stats);
  }

  /// Counter receiving, per loaded varying-column block slice, the number
  /// of ADDITIONAL candidates that consumed it (i.e. loads saved vs the
  /// unbatched plane). Nullptr disables accounting.
  void set_shared_blocks_counter(RelaxedCounter* counter) {
    shared_counter_ = counter;
  }

 private:
  friend struct CandidateBatch;

  struct RangeVariant {
    double lo, hi;
    bool hi_inclusive;
  };
  struct SetVariant {
    std::vector<uint8_t> member;  // indexed by dictionary code
    uint64_t query_bits[kBlockCodeWords];
    bool exact_bits;
  };

  std::vector<Selection> FilterAllBatch() const;

  BoundPredicate base_;
  bool base_has_clauses_ = false;
  bool var_is_range_ = true;
  int var_col_ = -1;
  const std::vector<double>* var_values_ = nullptr;   // range batches
  const std::vector<int32_t>* var_codes_ = nullptr;   // set batches
  std::vector<RangeVariant> range_vars_;
  std::vector<SetVariant> set_vars_;
  size_t num_rows_ = 0;
  const Table* table_ = nullptr;
  const TableBlockStats* block_stats_ = nullptr;
  BlockPruningStats* prune_stats_ = nullptr;
  bool pruning_enabled_ = true;
  ThreadPool* pool_ = nullptr;
  RelaxedCounter* shared_counter_ = nullptr;
};

/// One planned group of a candidate list: `count` consecutive predicates
/// starting at `begin`, batched when `batch` is set (runs of >= 2 that
/// factor into base + single-clause variants), singleton otherwise.
/// Concatenating the groups reproduces the input order exactly.
struct CandidateBatchPlan {
  size_t begin = 0;
  size_t count = 0;
  std::optional<CandidateBatch> batch;
};

/// Shortest run worth batching: FilterBatch's once-per-block slice gather
/// has to amortize across the variants, and below this length the batch
/// path measures slower than independent per-candidate filters.
inline constexpr size_t kMinProfitableBatch = 3;

/// Greedily factors `preds` into maximal batchable runs: consecutive
/// predicates that share all clauses except one same-kind clause on one
/// common attribute, emitted as a batch when the run reaches
/// kMinProfitableBatch (shorter runs come back as singletons).
/// Order-preserving and lossless — the i-th input is always group g's
/// Candidate(i - g.begin) (or the singleton pred itself).
std::vector<CandidateBatchPlan> PlanCandidateBatches(
    const std::vector<Predicate>& preds);

}  // namespace scorpion
