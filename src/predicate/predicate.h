// Predicates: conjunctions of range clauses over continuous attributes and
// set-containment clauses over categorical attributes, with at most one
// clause per attribute (Section 3.1 of the paper).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/block_stats.h"
#include "table/selection.h"
#include "table/table.h"

namespace scorpion {

class ThreadPool;

/// `lo <= x < hi`, or `lo <= x <= hi` when hi_inclusive. Splitting algorithms
/// produce half-open ranges so sibling partitions tile without overlap; the
/// topmost range of a domain is closed to include the max value.
struct RangeClause {
  std::string attr;
  double lo = 0.0;
  double hi = 0.0;
  bool hi_inclusive = false;

  bool Contains(double v) const {
    return v >= lo && (hi_inclusive ? v <= hi : v < hi);
  }
  /// True if every value satisfying `other` also satisfies this clause.
  bool ContainsClause(const RangeClause& other) const;
  bool operator==(const RangeClause& other) const = default;
};

/// `attr IN {codes...}` over a categorical column's dictionary codes.
/// Codes are kept sorted and unique.
struct SetClause {
  std::string attr;
  std::vector<int32_t> codes;

  bool Contains(int32_t code) const;
  bool ContainsClause(const SetClause& other) const;  // other.codes ⊆ codes
  bool operator==(const SetClause& other) const = default;
};

/// Domain metadata for an attribute, used for predicate volume and for
/// seeding search algorithms.
struct AttrDomain {
  DataType type = DataType::kDouble;
  double lo = 0.0;              // continuous
  double hi = 0.0;              // continuous
  int32_t cardinality = 0;      // categorical
};

using DomainMap = std::map<std::string, AttrDomain>;

/// Computes domains for the named attributes over all rows of `table`.
Result<DomainMap> ComputeDomains(const Table& table,
                                 const std::vector<std::string>& attrs);

class BoundPredicate;

/// \brief Conjunctive predicate: zero or more clauses, one per attribute.
///
/// The empty predicate is TRUE (matches every row). Clauses are stored
/// sorted by attribute name so that equal predicates have equal canonical
/// string forms.
class Predicate {
 public:
  Predicate() = default;

  /// The always-true predicate.
  static Predicate True() { return Predicate(); }

  /// Adds/merges a range clause. InvalidArgument if the attribute already
  /// has a set clause or the range is empty (lo > hi, or lo >= hi for a
  /// half-open range).
  Status AddRange(const RangeClause& clause);

  /// Adds a set clause (codes are normalized). InvalidArgument if the
  /// attribute already has a range clause or the code list is empty.
  Status AddSet(SetClause clause);

  bool IsTrue() const { return ranges_.empty() && sets_.empty(); }
  int num_clauses() const {
    return static_cast<int>(ranges_.size() + sets_.size());
  }

  const std::vector<RangeClause>& ranges() const { return ranges_; }
  const std::vector<SetClause>& sets() const { return sets_; }

  const RangeClause* FindRange(const std::string& attr) const;
  const SetClause* FindSet(const std::string& attr) const;
  bool HasClauseOn(const std::string& attr) const {
    return FindRange(attr) != nullptr || FindSet(attr) != nullptr;
  }

  /// Names of all constrained attributes, sorted.
  std::vector<std::string> Attributes() const;

  /// Resolves column references against a table for fast evaluation.
  Result<BoundPredicate> Bind(const Table& table) const;

  /// Row-at-a-time evaluation (resolves columns per call; tests/convenience).
  Result<bool> MatchesRow(const Table& table, RowId row) const;

  /// All matching rows of `table`, ascending (boundary shim over the
  /// vectorized, zone-map-pruned FilterAll path, so CSV/eval entry points
  /// get the same data plane as the engine).
  Result<RowIdList> Evaluate(const Table& table) const;

  /// Syntactic containment: every row matching `inner` also matches `outer`,
  /// provable clause-by-clause (outer's clauses all present in inner and
  /// looser). This is sufficient but not necessary for pi ≺_D pj.
  static bool SyntacticallyContains(const Predicate& outer,
                                    const Predicate& inner);

  /// Minimum bounding box of two predicates: range hulls and set unions over
  /// attributes constrained by BOTH inputs; an attribute constrained by only
  /// one input becomes unconstrained (the bounding box over the whole other
  /// predicate's domain extent).
  static Predicate BoundingBox(const Predicate& a, const Predicate& b);

  /// Conjunction of two predicates: clauses intersected attribute-wise.
  /// Returns nullopt if any intersection is empty (unsatisfiable).
  static std::optional<Predicate> Intersect(const Predicate& a,
                                            const Predicate& b);

  /// Copy of this predicate with the clause on `clause.attr` replaced (or
  /// added). Used by space-partitioning algorithms that successively narrow
  /// one attribute of a bounding box.
  Predicate WithRange(const RangeClause& clause) const;
  Predicate WithSet(SetClause clause) const;

  /// Fraction of the attribute space covered, per the Section 6.3 volume
  /// estimates: product over constrained attributes of the clause's share of
  /// its domain. Unconstrained attributes contribute factor 1. Clauses are
  /// clamped to the domain.
  double Volume(const DomainMap& domains) const;

  /// Canonical human-readable form, e.g.
  /// "voltage in [2.307, 2.33] & sensorid in {'15'}". Codes are rendered as
  /// dictionary strings when `table` is provided, else as raw codes.
  std::string ToString(const Table* table = nullptr) const;

  bool operator==(const Predicate& other) const = default;

 private:
  std::vector<RangeClause> ranges_;  // sorted by attr
  std::vector<SetClause> sets_;      // sorted by attr
};

/// \brief A Predicate with column indices resolved against one Table.
///
/// Evaluation is columnar: each clause runs one branch-free pass over its
/// column (ranges compare against Column::doubles(); set clauses index the
/// membership byte-table with Column::codes()), writing into a shared byte
/// mask that the clause passes AND together. Sparse inputs use a gather
/// kernel over the selection vector; all-rows inputs use a dense kernel that
/// packs the mask into a bitmap Selection.
///
/// On top of the kernels sits zone-map block pruning (table/block_stats.h):
/// each kBlockSize-row block is classified against the clauses as NONE /
/// ALL / PARTIAL; NONE blocks are skipped, ALL blocks are emitted via the
/// bitmap word-fill / dense range-append fast paths without reading column
/// data, and only PARTIAL blocks run the kernels. The verdicts mirror the
/// kernel semantics exactly (including NaN-matches-every-range), so pruned
/// output is bit-identical to unpruned output. Large filters additionally
/// run block-parallel over an attached ThreadPool, with per-block outputs
/// landing in disjoint slots concatenated in block order — still
/// bit-identical.
///
/// Valid only as long as the Table lives and is not appended to. The bound
/// row count (and storage generation) is recorded at Bind() time and
/// checked on every batch evaluation call (per-row Matches() checks it in
/// debug builds only): the vectorized entry points return
/// Status::FailedPrecondition — carrying both generations — instead of
/// reading stale or reallocated column storage (and therefore also before
/// stale block stats could be consulted). Live-table callers hold a
/// TableSnapshot (src/storage/live_table.h) so the error never fires in
/// normal operation; it exists for callers that append to a plain Table
/// under a still-bound predicate.
class BoundPredicate {
 public:
  /// True if the table row satisfies the predicate (row-at-a-time reference
  /// path; the vectorized kernels below are the hot path).
  bool Matches(RowId row) const;

  /// Vectorized: the matching subset of `input`. Output keeps vector form
  /// for sparse inputs and bitmap form for all-rows inputs.
  /// FailedPrecondition if the table was appended to since Bind().
  Result<Selection> Filter(const Selection& input) const;

  /// Vectorized: matching rows among all rows of the bound table, as a
  /// bitmap Selection. FailedPrecondition if the table was appended to
  /// since Bind().
  Result<Selection> FilterAll() const;

  /// Number of matches in `input` without materializing them.
  /// FailedPrecondition if the table was appended to since Bind().
  Result<size_t> Count(const Selection& input) const;

  /// Scalar row-at-a-time reference implementation over a sorted list.
  /// Test-only: nothing in src/ calls it anymore — it exists as the ground
  /// truth the kernel/pruning equivalence tests and benches compare
  /// against.
  RowIdList Filter(const RowIdList& rows) const;

  /// Scalar count over a sorted list (test-only reference, like Filter).
  size_t CountMatches(const RowIdList& rows) const;

  /// Row count of the bound table at Bind() time.
  size_t num_rows() const { return num_rows_; }

  /// Enables/disables zone-map block pruning for this bound predicate.
  /// Bind() arms it from the process-wide BlockPruningDefault(); the Scorer
  /// overrides it from ScorpionOptions::enable_block_pruning. Output is
  /// bit-identical either way.
  void set_enable_pruning(bool enabled) { pruning_enabled_ = enabled; }
  bool pruning_enabled() const { return pruning_enabled_; }

  /// Attaches a pool for block-parallel filtering of large inputs; nullptr
  /// (the default) filters on the calling thread. Per-block outputs land in
  /// disjoint slots and concatenate in block order, so results are
  /// bit-identical at every thread count.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Redirects pruning counters to `stats` (must outlive the predicate's
  /// last evaluation). Defaults to GlobalBlockPruningStats(); the Scorer
  /// installs its own instance so per-scorer numbers stay exact when many
  /// requests filter concurrently.
  void set_pruning_stats(BlockPruningStats* stats) { prune_stats_ = stats; }

 private:
  friend class Predicate;
  // The candidate-batched data plane (predicate/candidate_batch.h) reuses
  // the bound clause representations, the pruning plan and the mask fills,
  // so a batch's shared base evaluates through exactly this code.
  friend struct CandidateBatch;
  friend class BoundCandidateBatch;
  struct BoundRange {
    const std::vector<double>* values;
    double lo, hi;
    bool hi_inclusive;
    int col;  // column index for zone-map lookup
  };
  struct BoundSet {
    const std::vector<int32_t>* codes;
    std::vector<uint8_t> member;  // indexed by dictionary code
    int col;
    /// Allowed codes hashed with the block-stats rule, for classification.
    uint64_t query_bits[kBlockCodeWords];
    /// True when the column cardinality fits kBlockCodeBits, so the hash is
    /// the identity and ALL verdicts are sound.
    bool exact_bits;
  };

  /// Resolved zone-map context for one evaluation call: per-clause pointers
  /// into the (lazily built) per-column block stats.
  struct PruningPlan {
    const TableBlockStats* stats = nullptr;
    std::vector<const BlockStat*> range_stats;  // aligned with ranges_
    std::vector<const BlockStat*> set_stats;    // aligned with sets_
  };

  /// Aborts if the bound table has been appended to since Bind() (the
  /// scalar test-only reference paths keep the hard check).
  void CheckNotStale() const;

  /// OK while the bound table still has the Bind()-time row count;
  /// otherwise FailedPrecondition naming the bound and current generations
  /// and row counts.
  Status StaleStatus() const;

  /// Builds the zone-map plan; false when pruning is disabled or stats are
  /// unavailable (callers then take the unpruned kernel path).
  bool PreparePlan(PruningPlan* plan) const;

  /// Conjunction verdict for block `b`: NONE if any clause is NONE, ALL if
  /// every clause is ALL, PARTIAL otherwise.
  BlockMatch ClassifyBlock(const PruningPlan& plan, size_t b) const;

  /// Fills `mask[i] = matches(rows[i])` clause by clause (gather kernel);
  /// requires at least one clause (the first writes, the rest AND).
  void FillMaskGather(const RowId* rows, size_t n, uint8_t* mask) const;

  /// Fills `mask[i - begin] = matches(i)` for i in [begin, end) (dense
  /// kernel); requires at least one clause.
  void FillMaskDenseRange(size_t begin, size_t end, uint8_t* mask) const;

  std::vector<BoundRange> ranges_;
  std::vector<BoundSet> sets_;
  size_t num_rows_ = 0;
  /// Table::generation() at Bind() time, reported by StaleStatus() so a
  /// live-table caller can see which generations diverged.
  uint64_t bound_generation_ = 0;
  const Table* table_ = nullptr;
  /// Owned by the table's BlockStatsCache; valid while the table keeps the
  /// bound row count, which CheckNotStale() enforces before every use.
  const TableBlockStats* block_stats_ = nullptr;
  BlockPruningStats* prune_stats_ = nullptr;  // set at Bind()
  bool pruning_enabled_ = true;
  ThreadPool* pool_ = nullptr;
};

}  // namespace scorpion
