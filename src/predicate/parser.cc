#include "predicate/parser.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/macros.h"
#include "common/string_util.h"

namespace scorpion {

namespace {

/// Hand-rolled tokenizer: identifiers, numbers, quoted strings, punctuation.
class Lexer {
 public:
  struct Token {
    enum Kind {
      kIdent,
      kNumber,
      kString,  // quoted
      kPunct,   // single char: [ ] ( ) { } , & or two-char ops via kOp
      kOp,      // < <= > >= = ==
      kEnd,
    };
    Kind kind = kEnd;
    std::string text;
    double number = 0.0;
  };

  explicit Lexer(const std::string& input) : input_(input) { Advance(); }

  const Token& Peek() const { return current_; }

  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }

  Status error(const std::string& msg) const {
    return Status::InvalidArgument("predicate parse error at offset " +
                                   std::to_string(pos_) + ": " + msg);
  }

 private:
  void Advance() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    current_ = Token();
    if (pos_ >= input_.size()) {
      current_.kind = Token::kEnd;
      return;
    }
    char ch = input_[pos_];
    if (ch == '\'' || ch == '"') {
      char quote = ch;
      size_t end = pos_ + 1;
      while (end < input_.size() && input_[end] != quote) ++end;
      current_.kind = Token::kString;
      current_.text = input_.substr(pos_ + 1, end - pos_ - 1);
      pos_ = end < input_.size() ? end + 1 : end;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(ch)) || ch == '-' ||
        ch == '+' || ch == '.') {
      char* end = nullptr;
      current_.number = std::strtod(input_.c_str() + pos_, &end);
      if (end != input_.c_str() + pos_) {
        current_.kind = Token::kNumber;
        current_.text = input_.substr(pos_, end - (input_.c_str() + pos_));
        pos_ = static_cast<size_t>(end - input_.c_str());
        return;
      }
    }
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
      size_t end = pos_;
      while (end < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[end])) ||
              input_[end] == '_' || input_[end] == '.')) {
        ++end;
      }
      current_.kind = Token::kIdent;
      current_.text = input_.substr(pos_, end - pos_);
      pos_ = end;
      return;
    }
    if (ch == '<' || ch == '>' || ch == '=') {
      current_.kind = Token::kOp;
      current_.text = std::string(1, ch);
      ++pos_;
      if (pos_ < input_.size() && input_[pos_] == '=') {
        current_.text += '=';
        ++pos_;
      }
      return;
    }
    current_.kind = Token::kPunct;
    current_.text = std::string(1, ch);
    ++pos_;
  }

  const std::string& input_;
  size_t pos_ = 0;
  Token current_;
};

bool IEquals(const std::string& a, const char* b) {
  size_t n = 0;
  for (; b[n] != '\0'; ++n) {
    if (n >= a.size() ||
        std::tolower(static_cast<unsigned char>(a[n])) !=
            std::tolower(static_cast<unsigned char>(b[n]))) {
      return false;
    }
  }
  return n == a.size();
}

class Parser {
 public:
  Parser(const std::string& text, const Table& table)
      : lexer_(text), table_(table) {}

  Result<Predicate> Parse() {
    if (lexer_.Peek().kind == Lexer::Token::kIdent &&
        IEquals(lexer_.Peek().text, "true")) {
      lexer_.Take();
      if (lexer_.Peek().kind != Lexer::Token::kEnd) {
        return lexer_.error("unexpected input after TRUE");
      }
      return Predicate::True();
    }
    Predicate out;
    while (true) {
      SCORPION_RETURN_NOT_OK(ParseClause(&out));
      const Lexer::Token& next = lexer_.Peek();
      if (next.kind == Lexer::Token::kEnd) break;
      bool is_and = (next.kind == Lexer::Token::kPunct && next.text == "&") ||
                    (next.kind == Lexer::Token::kIdent &&
                     IEquals(next.text, "and"));
      if (!is_and) {
        return lexer_.error("expected '&' between clauses, got '" +
                            next.text + "'");
      }
      lexer_.Take();
    }
    return out;
  }

 private:
  Status ParseClause(Predicate* out) {
    Lexer::Token attr = lexer_.Take();
    if (attr.kind != Lexer::Token::kIdent) {
      return lexer_.error("expected attribute name");
    }
    SCORPION_ASSIGN_OR_RETURN(const Column* col,
                              table_.ColumnByName(attr.text));

    Lexer::Token op = lexer_.Take();
    if (op.kind == Lexer::Token::kIdent && IEquals(op.text, "in")) {
      return ParseInClause(attr.text, col, out);
    }
    if (op.kind == Lexer::Token::kOp) {
      return ParseComparison(attr.text, col, op.text, out);
    }
    return lexer_.error("expected 'in' or comparison after '" + attr.text +
                        "'");
  }

  Status ParseInClause(const std::string& attr, const Column* col,
                       Predicate* out) {
    Lexer::Token open = lexer_.Take();
    if (open.kind != Lexer::Token::kPunct) {
      return lexer_.error("expected '[', '(' or '{' after 'in'");
    }
    if (open.text == "{") {
      if (col->type() != DataType::kCategorical) {
        return Status::TypeError("set clause on continuous attribute '" +
                                 attr + "'");
      }
      SetClause clause;
      clause.attr = attr;
      while (true) {
        Lexer::Token v = lexer_.Take();
        std::string value;
        if (v.kind == Lexer::Token::kString ||
            v.kind == Lexer::Token::kIdent) {
          value = v.text;
        } else if (v.kind == Lexer::Token::kNumber) {
          value = FormatDouble(v.number);
        } else {
          return lexer_.error("expected a value in set clause");
        }
        int32_t code = col->CodeOf(value);
        if (code < 0) {
          return Status::KeyError("value '" + value +
                                  "' not present in attribute '" + attr + "'");
        }
        clause.codes.push_back(code);
        Lexer::Token sep = lexer_.Take();
        if (sep.kind == Lexer::Token::kPunct && sep.text == ",") continue;
        if (sep.kind == Lexer::Token::kPunct && sep.text == "}") break;
        return lexer_.error("expected ',' or '}' in set clause");
      }
      return out->AddSet(std::move(clause));
    }
    if (open.text == "[" || open.text == "(") {
      if (col->type() != DataType::kDouble) {
        return Status::TypeError("range clause on categorical attribute '" +
                                 attr + "'");
      }
      if (open.text == "(") {
        return Status::NotImplemented(
            "open lower bounds are not supported; ranges are closed below");
      }
      Lexer::Token lo = lexer_.Take();
      if (lo.kind != Lexer::Token::kNumber) {
        return lexer_.error("expected number for range low bound");
      }
      Lexer::Token comma = lexer_.Take();
      if (comma.kind != Lexer::Token::kPunct || comma.text != ",") {
        return lexer_.error("expected ',' in range clause");
      }
      Lexer::Token hi = lexer_.Take();
      if (hi.kind != Lexer::Token::kNumber) {
        return lexer_.error("expected number for range high bound");
      }
      Lexer::Token close = lexer_.Take();
      if (close.kind != Lexer::Token::kPunct ||
          (close.text != "]" && close.text != ")")) {
        return lexer_.error("expected ']' or ')' closing range clause");
      }
      RangeClause clause;
      clause.attr = attr;
      clause.lo = lo.number;
      clause.hi = hi.number;
      clause.hi_inclusive = close.text == "]";
      return out->AddRange(clause);
    }
    return lexer_.error("expected '[', '(' or '{' after 'in'");
  }

  Status ParseComparison(const std::string& attr, const Column* col,
                         const std::string& op, Predicate* out) {
    Lexer::Token v = lexer_.Take();
    if (op == "=" || op == "==") {
      if (col->type() == DataType::kCategorical) {
        std::string value;
        if (v.kind == Lexer::Token::kString ||
            v.kind == Lexer::Token::kIdent) {
          value = v.text;
        } else if (v.kind == Lexer::Token::kNumber) {
          value = FormatDouble(v.number);
        } else {
          return lexer_.error("expected a value after '='");
        }
        int32_t code = col->CodeOf(value);
        if (code < 0) {
          return Status::KeyError("value '" + value +
                                  "' not present in attribute '" + attr + "'");
        }
        return out->AddSet({attr, {code}});
      }
      if (v.kind != Lexer::Token::kNumber) {
        return lexer_.error("expected a number after '='");
      }
      return out->AddRange({attr, v.number, v.number, true});
    }
    // Ordered comparisons only apply to continuous attributes; desugar onto
    // the column's observed domain.
    if (col->type() != DataType::kDouble) {
      return Status::TypeError("comparison '" + op +
                               "' on categorical attribute '" + attr + "'");
    }
    if (v.kind != Lexer::Token::kNumber) {
      return lexer_.error("expected a number after '" + op + "'");
    }
    double bound = v.number;
    if (op == "<" || op == "<=") {
      SCORPION_ASSIGN_OR_RETURN(const double col_min, col->Min());
      return out->AddRange({attr, col_min, bound, op == "<="});
    }
    if (op == ">=" || op == ">") {
      SCORPION_ASSIGN_OR_RETURN(const double col_max, col->Max());
      double lo = bound;
      if (op == ">") {
        // Strict lower bounds cannot be expressed exactly with closed-below
        // ranges; nudge by the smallest representable step.
        lo = std::nextafter(bound, col_max + 1.0);
      }
      return out->AddRange({attr, lo, col_max, true});
    }
    return lexer_.error("unknown operator '" + op + "'");
  }

  Lexer lexer_;
  const Table& table_;
};

}  // namespace

Result<Predicate> ParsePredicate(const std::string& text, const Table& table) {
  std::string trimmed = Trim(text);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty predicate string");
  }
  return Parser(trimmed, table).Parse();
}

}  // namespace scorpion
