#include "predicate/filter_kernels.h"

#include <bit>
#include <cstring>

namespace scorpion {
namespace kernels {

// Baseline x86-64 (SSE2) cannot auto-vectorize a double-compare producing a
// byte mask, so the per-clause loops are compiled with target_clones: the
// loader picks the best clone (AVX2 / AVX-512) for the machine at runtime
// while the binary stays portable. `__restrict__` matters too: the byte
// mask is unsigned char, which the aliasing rules let overlap any column.
//
// IFUNC resolvers produced by target_clones run before sanitizer runtimes
// initialize and crash them at startup, so clones are disabled under TSan /
// ASan (those builds check semantics, not throughput).
#if defined(__GNUC__) && !defined(__clang__) && defined(__x86_64__) &&   \
    defined(__ELF__) && !defined(__SANITIZE_THREAD__) &&                 \
    !defined(__SANITIZE_ADDRESS__)
#define SCORPION_KERNEL_CLONES \
  __attribute__((target_clones("default", "avx2", "avx512f")))
#else
#define SCORPION_KERNEL_CLONES
#endif

SCORPION_KERNEL_CLONES
void RangeMaskDense(const double* __restrict__ v, size_t n, double lo,
                    double hi, bool hi_inclusive, bool first,
                    uint8_t* __restrict__ m) {
  if (first) {
    if (hi_inclusive) {
      for (size_t i = 0; i < n; ++i) {
        m[i] = static_cast<uint8_t>(!(v[i] < lo)) &
               static_cast<uint8_t>(!(v[i] > hi));
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        m[i] = static_cast<uint8_t>(!(v[i] < lo)) &
               static_cast<uint8_t>(!(v[i] >= hi));
      }
    }
  } else {
    if (hi_inclusive) {
      for (size_t i = 0; i < n; ++i) {
        m[i] &= static_cast<uint8_t>(!(v[i] < lo)) &
                static_cast<uint8_t>(!(v[i] > hi));
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        m[i] &= static_cast<uint8_t>(!(v[i] < lo)) &
                static_cast<uint8_t>(!(v[i] >= hi));
      }
    }
  }
}

SCORPION_KERNEL_CLONES
void RangeMaskGather(const double* __restrict__ v,
                     const RowId* __restrict__ rows, size_t n, double lo,
                     double hi, bool hi_inclusive, bool first,
                     uint8_t* __restrict__ m) {
  if (first) {
    if (hi_inclusive) {
      for (size_t i = 0; i < n; ++i) {
        const double x = v[rows[i]];
        m[i] = static_cast<uint8_t>(!(x < lo)) &
               static_cast<uint8_t>(!(x > hi));
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        const double x = v[rows[i]];
        m[i] = static_cast<uint8_t>(!(x < lo)) &
               static_cast<uint8_t>(!(x >= hi));
      }
    }
  } else {
    if (hi_inclusive) {
      for (size_t i = 0; i < n; ++i) {
        const double x = v[rows[i]];
        m[i] &= static_cast<uint8_t>(!(x < lo)) &
                static_cast<uint8_t>(!(x > hi));
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        const double x = v[rows[i]];
        m[i] &= static_cast<uint8_t>(!(x < lo)) &
                static_cast<uint8_t>(!(x >= hi));
      }
    }
  }
}

SCORPION_KERNEL_CLONES
void SetMaskDense(const int32_t* __restrict__ codes, size_t n,
                  const uint8_t* __restrict__ member, bool first,
                  uint8_t* __restrict__ m) {
  if (first) {
    for (size_t i = 0; i < n; ++i) m[i] = member[codes[i]];
  } else {
    for (size_t i = 0; i < n; ++i) m[i] &= member[codes[i]];
  }
}

SCORPION_KERNEL_CLONES
void SetMaskGather(const int32_t* __restrict__ codes,
                   const RowId* __restrict__ rows, size_t n,
                   const uint8_t* __restrict__ member, bool first,
                   uint8_t* __restrict__ m) {
  if (first) {
    for (size_t i = 0; i < n; ++i) m[i] = member[codes[rows[i]]];
  } else {
    for (size_t i = 0; i < n; ++i) m[i] &= member[codes[rows[i]]];
  }
}

// Packing 8 mask bytes per multiply: bit position 56 + 8i - 7j of x * C
// receives exactly one (i, j) term for i, j in [0, 8), so the top byte of
// the product is b7..b0 with no carries. The trick reads the bytes through
// a uint64_t and so assumes little-endian; other targets take the plain
// byte loop.
size_t PackMaskIntoWords(const uint8_t* mask, size_t begin, size_t end,
                         uint64_t* words) {
  const size_t len = end - begin;
  uint64_t* out = words + (begin >> 6);
  size_t count = 0;
  constexpr uint64_t kPack = 0x0102040810204080ULL;
  const size_t full_words = len / 64;
  for (size_t w = 0; w < full_words; ++w) {
    const uint8_t* base = mask + (w << 6);
    uint64_t word = 0;
    if constexpr (std::endian::native == std::endian::little) {
      for (size_t g = 0; g < 8; ++g) {
        uint64_t x;
        std::memcpy(&x, base + (g << 3), sizeof(x));
        word |= ((x * kPack) >> 56) << (g << 3);
      }
    } else {
      for (size_t b = 0; b < 64; ++b) {
        word |= static_cast<uint64_t>(base[b]) << b;
      }
    }
    out[w] = word;
    count += static_cast<size_t>(std::popcount(word));
  }
  if (full_words * 64 < len) {
    const size_t base = full_words << 6;
    uint64_t word = 0;
    for (size_t b = 0; b < len - base; ++b) {
      word |= static_cast<uint64_t>(mask[base + b]) << b;
    }
    out[full_words] = word;
    count += static_cast<size_t>(std::popcount(word));
  }
  return count;
}

size_t SumMask(const uint8_t* mask, size_t n) {
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) kept += mask[i];
  return kept;
}

}  // namespace kernels
}  // namespace scorpion
