#include "predicate/predicate.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace scorpion {

// --- Clauses ----------------------------------------------------------------

bool RangeClause::ContainsClause(const RangeClause& other) const {
  if (other.lo < lo) return false;
  if (hi_inclusive) {
    // [lo, hi] contains [other.lo, other.hi(] or )) whenever other.hi <= hi.
    return other.hi <= hi;
  }
  // [lo, hi): an inclusive-hi inner clause must end strictly before hi.
  if (other.hi_inclusive) return other.hi < hi;
  return other.hi <= hi;
}

bool SetClause::Contains(int32_t code) const {
  return std::binary_search(codes.begin(), codes.end(), code);
}

bool SetClause::ContainsClause(const SetClause& other) const {
  return std::includes(codes.begin(), codes.end(), other.codes.begin(),
                       other.codes.end());
}

// --- Domains ----------------------------------------------------------------

Result<DomainMap> ComputeDomains(const Table& table,
                                 const std::vector<std::string>& attrs) {
  DomainMap out;
  for (const std::string& attr : attrs) {
    SCORPION_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(attr));
    AttrDomain d;
    d.type = col->type();
    if (col->type() == DataType::kDouble) {
      SCORPION_ASSIGN_OR_RETURN(d.lo, col->Min());
      SCORPION_ASSIGN_OR_RETURN(d.hi, col->Max());
    } else {
      d.cardinality = col->Cardinality();
    }
    out.emplace(attr, d);
  }
  return out;
}

// --- Predicate building ------------------------------------------------------

namespace {

template <typename ClauseT>
typename std::vector<ClauseT>::const_iterator FindByAttr(
    const std::vector<ClauseT>& clauses, const std::string& attr) {
  return std::find_if(clauses.begin(), clauses.end(),
                      [&](const ClauseT& c) { return c.attr == attr; });
}

template <typename ClauseT>
void InsertSorted(std::vector<ClauseT>* clauses, ClauseT clause) {
  auto pos = std::lower_bound(
      clauses->begin(), clauses->end(), clause,
      [](const ClauseT& a, const ClauseT& b) { return a.attr < b.attr; });
  clauses->insert(pos, std::move(clause));
}

}  // namespace

Status Predicate::AddRange(const RangeClause& clause) {
  if (FindByAttr(sets_, clause.attr) != sets_.end()) {
    return Status::InvalidArgument("attribute '" + clause.attr +
                                   "' already has a set clause");
  }
  bool empty_range = clause.hi_inclusive ? clause.lo > clause.hi
                                         : clause.lo >= clause.hi;
  if (empty_range) {
    return Status::InvalidArgument("empty range for '" + clause.attr + "'");
  }
  auto it = FindByAttr(ranges_, clause.attr);
  if (it != ranges_.end()) {
    return Status::InvalidArgument("attribute '" + clause.attr +
                                   "' already has a range clause");
  }
  InsertSorted(&ranges_, clause);
  return Status::OK();
}

Status Predicate::AddSet(SetClause clause) {
  if (FindByAttr(ranges_, clause.attr) != ranges_.end()) {
    return Status::InvalidArgument("attribute '" + clause.attr +
                                   "' already has a range clause");
  }
  if (FindByAttr(sets_, clause.attr) != sets_.end()) {
    return Status::InvalidArgument("attribute '" + clause.attr +
                                   "' already has a set clause");
  }
  std::sort(clause.codes.begin(), clause.codes.end());
  clause.codes.erase(std::unique(clause.codes.begin(), clause.codes.end()),
                     clause.codes.end());
  if (clause.codes.empty()) {
    return Status::InvalidArgument("empty code set for '" + clause.attr + "'");
  }
  InsertSorted(&sets_, std::move(clause));
  return Status::OK();
}

const RangeClause* Predicate::FindRange(const std::string& attr) const {
  auto it = FindByAttr(ranges_, attr);
  return it == ranges_.end() ? nullptr : &*it;
}

const SetClause* Predicate::FindSet(const std::string& attr) const {
  auto it = FindByAttr(sets_, attr);
  return it == sets_.end() ? nullptr : &*it;
}

std::vector<std::string> Predicate::Attributes() const {
  std::vector<std::string> out;
  out.reserve(ranges_.size() + sets_.size());
  for (const auto& r : ranges_) out.push_back(r.attr);
  for (const auto& s : sets_) out.push_back(s.attr);
  std::sort(out.begin(), out.end());
  return out;
}

// --- Evaluation ---------------------------------------------------------------

Result<BoundPredicate> Predicate::Bind(const Table& table) const {
  BoundPredicate bound;
  bound.num_rows_ = table.num_rows();
  bound.table_ = &table;
  for (const RangeClause& r : ranges_) {
    SCORPION_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(r.attr));
    if (col->type() != DataType::kDouble) {
      return Status::TypeError("range clause on categorical attribute '" +
                               r.attr + "'");
    }
    bound.ranges_.push_back({&col->doubles(), r.lo, r.hi, r.hi_inclusive});
  }
  for (const SetClause& s : sets_) {
    SCORPION_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(s.attr));
    if (col->type() != DataType::kCategorical) {
      return Status::TypeError("set clause on continuous attribute '" +
                               s.attr + "'");
    }
    BoundPredicate::BoundSet bs;
    bs.codes = &col->codes();
    bs.member.assign(static_cast<size_t>(col->Cardinality()), 0);
    for (int32_t code : s.codes) {
      if (code >= 0 && static_cast<size_t>(code) < bs.member.size()) {
        bs.member[static_cast<size_t>(code)] = 1;
      }
    }
    bound.sets_.push_back(std::move(bs));
  }
  return bound;
}

Result<bool> Predicate::MatchesRow(const Table& table, RowId row) const {
  SCORPION_ASSIGN_OR_RETURN(BoundPredicate bound, Bind(table));
  return bound.Matches(row);
}

Result<RowIdList> Predicate::Evaluate(const Table& table) const {
  SCORPION_ASSIGN_OR_RETURN(BoundPredicate bound, Bind(table));
  return bound.FilterAll().rows();
}

void BoundPredicate::CheckNotStale() const {
  SCORPION_CHECK(table_ == nullptr || table_->num_rows() == num_rows_,
                 "BoundPredicate evaluated after its Table was appended to; "
                 "re-Bind() the predicate");
}

bool BoundPredicate::Matches(RowId row) const {
  SCORPION_DCHECK(table_ == nullptr || table_->num_rows() == num_rows_,
                  "BoundPredicate::Matches after the Table was appended to");
  for (const BoundRange& r : ranges_) {
    double v = (*r.values)[row];
    if (v < r.lo) return false;
    if (r.hi_inclusive ? v > r.hi : v >= r.hi) return false;
  }
  for (const BoundSet& s : sets_) {
    int32_t code = (*s.codes)[row];
    if (static_cast<size_t>(code) >= s.member.size() || !s.member[code]) {
      return false;
    }
  }
  return true;
}

// The mask kernels mirror Matches() exactly — including its NaN behaviour
// (NaN fails neither `v < lo` nor `v > hi`, so NaN rows match a range) — so
// vectorized and scalar evaluation stay bit-identical. Each clause is one
// branch-free pass over its column (hi_inclusive and first/AND resolved
// outside the loop); the first clause writes the mask, later clauses AND
// into it, so no mask initialization pass is needed.
//
// Baseline x86-64 (SSE2) cannot auto-vectorize a double-compare producing a
// byte mask, so the per-clause loops are compiled with target_clones: the
// loader picks the best clone (AVX2 / AVX-512) for the machine at runtime
// while the binary stays portable. `__restrict__` matters too: the byte
// mask is unsigned char, which the aliasing rules let overlap any column.

namespace {

// IFUNC resolvers produced by target_clones run before sanitizer runtimes
// initialize and crash them at startup, so clones are disabled under TSan /
// ASan (those builds check semantics, not throughput).
#if defined(__GNUC__) && !defined(__clang__) && defined(__x86_64__) &&   \
    defined(__ELF__) && !defined(__SANITIZE_THREAD__) &&                 \
    !defined(__SANITIZE_ADDRESS__)
#define SCORPION_KERNEL_CLONES \
  __attribute__((target_clones("default", "avx2", "avx512f")))
#else
#define SCORPION_KERNEL_CLONES
#endif

SCORPION_KERNEL_CLONES
void RangeMaskDense(const double* __restrict__ v, size_t n, double lo,
                    double hi, bool hi_inclusive, bool first,
                    uint8_t* __restrict__ m) {
  if (first) {
    if (hi_inclusive) {
      for (size_t i = 0; i < n; ++i) {
        m[i] = static_cast<uint8_t>(!(v[i] < lo)) &
               static_cast<uint8_t>(!(v[i] > hi));
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        m[i] = static_cast<uint8_t>(!(v[i] < lo)) &
               static_cast<uint8_t>(!(v[i] >= hi));
      }
    }
  } else {
    if (hi_inclusive) {
      for (size_t i = 0; i < n; ++i) {
        m[i] &= static_cast<uint8_t>(!(v[i] < lo)) &
                static_cast<uint8_t>(!(v[i] > hi));
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        m[i] &= static_cast<uint8_t>(!(v[i] < lo)) &
                static_cast<uint8_t>(!(v[i] >= hi));
      }
    }
  }
}

SCORPION_KERNEL_CLONES
void RangeMaskGather(const double* __restrict__ v,
                     const RowId* __restrict__ rows, size_t n, double lo,
                     double hi, bool hi_inclusive, bool first,
                     uint8_t* __restrict__ m) {
  if (first) {
    if (hi_inclusive) {
      for (size_t i = 0; i < n; ++i) {
        const double x = v[rows[i]];
        m[i] = static_cast<uint8_t>(!(x < lo)) &
               static_cast<uint8_t>(!(x > hi));
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        const double x = v[rows[i]];
        m[i] = static_cast<uint8_t>(!(x < lo)) &
               static_cast<uint8_t>(!(x >= hi));
      }
    }
  } else {
    if (hi_inclusive) {
      for (size_t i = 0; i < n; ++i) {
        const double x = v[rows[i]];
        m[i] &= static_cast<uint8_t>(!(x < lo)) &
                static_cast<uint8_t>(!(x > hi));
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        const double x = v[rows[i]];
        m[i] &= static_cast<uint8_t>(!(x < lo)) &
                static_cast<uint8_t>(!(x >= hi));
      }
    }
  }
}

SCORPION_KERNEL_CLONES
void SetMaskDense(const int32_t* __restrict__ codes, size_t n,
                  const uint8_t* __restrict__ member, bool first,
                  uint8_t* __restrict__ m) {
  if (first) {
    for (size_t i = 0; i < n; ++i) m[i] = member[codes[i]];
  } else {
    for (size_t i = 0; i < n; ++i) m[i] &= member[codes[i]];
  }
}

SCORPION_KERNEL_CLONES
void SetMaskGather(const int32_t* __restrict__ codes,
                   const RowId* __restrict__ rows, size_t n,
                   const uint8_t* __restrict__ member, bool first,
                   uint8_t* __restrict__ m) {
  if (first) {
    for (size_t i = 0; i < n; ++i) m[i] = member[codes[rows[i]]];
  } else {
    for (size_t i = 0; i < n; ++i) m[i] &= member[codes[rows[i]]];
  }
}

/// Per-thread mask scratch: filter calls are frequent and short-lived, and
/// the mask never escapes a call, so one growable buffer per thread removes
/// the allocation + clear from every evaluation. Memory held is bounded by
/// the largest table filtered on the thread.
std::vector<uint8_t>& MaskScratch(size_t n) {
  thread_local std::vector<uint8_t> scratch;
  if (scratch.size() < n) scratch.resize(n);
  return scratch;
}

}  // namespace

void BoundPredicate::FillMaskGather(const RowId* rows, size_t n,
                                    uint8_t* mask) const {
  bool first = true;
  for (const BoundRange& r : ranges_) {
    RangeMaskGather(r.values->data(), rows, n, r.lo, r.hi, r.hi_inclusive,
                    first, mask);
    first = false;
  }
  for (const BoundSet& s : sets_) {
    SetMaskGather(s.codes->data(), rows, n, s.member.data(), first, mask);
    first = false;
  }
}

void BoundPredicate::FillMaskDense(uint8_t* mask) const {
  const size_t n = num_rows_;
  bool first = true;
  for (const BoundRange& r : ranges_) {
    RangeMaskDense(r.values->data(), n, r.lo, r.hi, r.hi_inclusive, first,
                   mask);
    first = false;
  }
  for (const BoundSet& s : sets_) {
    SetMaskDense(s.codes->data(), n, s.member.data(), first, mask);
    first = false;
  }
}

Selection BoundPredicate::Filter(const Selection& input) const {
  CheckNotStale();
  SCORPION_CHECK(input.universe_size() == num_rows_,
                 "Filter input universe does not match the bound table");
  if (ranges_.empty() && sets_.empty()) return input;  // TRUE predicate
  if (input.IsAll()) return FilterAll();
  const RowIdList& rows = input.rows();
  const size_t n = rows.size();
  uint8_t* mask = MaskScratch(n).data();
  FillMaskGather(rows.data(), n, mask);
  RowIdList out;
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) kept += mask[i];
  out.reserve(kept);
  for (size_t i = 0; i < n; ++i) {
    if (mask[i]) out.push_back(rows[i]);
  }
  return Selection::FromSorted(std::move(out), num_rows_);
}

Selection BoundPredicate::FilterAll() const {
  CheckNotStale();
  const size_t n = num_rows_;
  if (ranges_.empty() && sets_.empty()) return Selection::All(n);
  uint8_t* mask = MaskScratch(n).data();
  FillMaskDense(mask);
  std::vector<uint64_t> words((n + 63) / 64, 0);
  size_t count = 0;
  // Pack 8 mask bytes (each 0/1) into 8 bits per multiply: bit position
  // 56 + 8i - 7j of x * C receives exactly one (i, j) term for i, j in
  // [0, 8), so the top byte of the product is b7..b0 with no carries. The
  // trick reads the bytes through a uint64_t and so assumes little-endian;
  // other targets take the plain byte loop.
  constexpr uint64_t kPack = 0x0102040810204080ULL;
  const size_t full_words = n / 64;
  for (size_t w = 0; w < full_words; ++w) {
    const uint8_t* base = mask + (w << 6);
    uint64_t word = 0;
    if constexpr (std::endian::native == std::endian::little) {
      for (size_t g = 0; g < 8; ++g) {
        uint64_t x;
        std::memcpy(&x, base + (g << 3), sizeof(x));
        word |= ((x * kPack) >> 56) << (g << 3);
      }
    } else {
      for (size_t b = 0; b < 64; ++b) {
        word |= static_cast<uint64_t>(base[b]) << b;
      }
    }
    words[w] = word;
    count += static_cast<size_t>(std::popcount(word));
  }
  if (full_words < words.size()) {
    const size_t base = full_words << 6;
    uint64_t word = 0;
    for (size_t b = 0; b < n - base; ++b) {
      word |= static_cast<uint64_t>(mask[base + b]) << b;
    }
    words[full_words] = word;
    count += static_cast<size_t>(std::popcount(word));
  }
  return Selection::FromBitmapCounted(std::move(words), n, count);
}

size_t BoundPredicate::Count(const Selection& input) const {
  CheckNotStale();
  SCORPION_CHECK(input.universe_size() == num_rows_,
                 "Count input universe does not match the bound table");
  if (ranges_.empty() && sets_.empty()) return input.size();
  if (input.IsAll()) {
    // Dense mask + byte sum; no bitmap materialization for a bare count.
    const size_t n = num_rows_;
    uint8_t* mask = MaskScratch(n).data();
    FillMaskDense(mask);
    size_t kept = 0;
    for (size_t i = 0; i < n; ++i) kept += mask[i];
    return kept;
  }
  const RowIdList& rows = input.rows();
  const size_t n = rows.size();
  uint8_t* mask = MaskScratch(n).data();
  FillMaskGather(rows.data(), n, mask);
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) kept += mask[i];
  return kept;
}

RowIdList BoundPredicate::Filter(const RowIdList& rows) const {
  CheckNotStale();
  RowIdList out;
  out.reserve(rows.size());
  for (RowId r : rows) {
    if (Matches(r)) out.push_back(r);
  }
  return out;
}

size_t BoundPredicate::CountMatches(const RowIdList& rows) const {
  CheckNotStale();
  size_t n = 0;
  for (RowId r : rows) {
    if (Matches(r)) ++n;
  }
  return n;
}

// --- Algebra -------------------------------------------------------------------

bool Predicate::SyntacticallyContains(const Predicate& outer,
                                      const Predicate& inner) {
  for (const RangeClause& ro : outer.ranges_) {
    const RangeClause* ri = inner.FindRange(ro.attr);
    if (ri == nullptr || !ro.ContainsClause(*ri)) return false;
  }
  for (const SetClause& so : outer.sets_) {
    const SetClause* si = inner.FindSet(so.attr);
    if (si == nullptr || !so.ContainsClause(*si)) return false;
  }
  return true;
}

Predicate Predicate::BoundingBox(const Predicate& a, const Predicate& b) {
  Predicate out;
  for (const RangeClause& ra : a.ranges_) {
    const RangeClause* rb = b.FindRange(ra.attr);
    if (rb == nullptr) continue;  // unconstrained in b -> unconstrained hull
    RangeClause hull;
    hull.attr = ra.attr;
    hull.lo = std::min(ra.lo, rb->lo);
    if (ra.hi > rb->hi) {
      hull.hi = ra.hi;
      hull.hi_inclusive = ra.hi_inclusive;
    } else if (rb->hi > ra.hi) {
      hull.hi = rb->hi;
      hull.hi_inclusive = rb->hi_inclusive;
    } else {
      hull.hi = ra.hi;
      hull.hi_inclusive = ra.hi_inclusive || rb->hi_inclusive;
    }
    out.AddRange(hull).ok();  // cannot fail: hull is non-empty by construction
  }
  for (const SetClause& sa : a.sets_) {
    const SetClause* sb = b.FindSet(sa.attr);
    if (sb == nullptr) continue;
    SetClause hull;
    hull.attr = sa.attr;
    hull.codes.reserve(sa.codes.size() + sb->codes.size());
    std::set_union(sa.codes.begin(), sa.codes.end(), sb->codes.begin(),
                   sb->codes.end(), std::back_inserter(hull.codes));
    out.AddSet(std::move(hull)).ok();
  }
  return out;
}

std::optional<Predicate> Predicate::Intersect(const Predicate& a,
                                              const Predicate& b) {
  Predicate out;
  // Ranges: take a's clauses, narrowing where b also constrains.
  for (const RangeClause& ra : a.ranges_) {
    const RangeClause* rb = b.FindRange(ra.attr);
    RangeClause merged = ra;
    if (rb != nullptr) {
      merged.lo = std::max(ra.lo, rb->lo);
      if (ra.hi < rb->hi) {
        merged.hi = ra.hi;
        merged.hi_inclusive = ra.hi_inclusive;
      } else if (rb->hi < ra.hi) {
        merged.hi = rb->hi;
        merged.hi_inclusive = rb->hi_inclusive;
      } else {
        merged.hi = ra.hi;
        merged.hi_inclusive = ra.hi_inclusive && rb->hi_inclusive;
      }
    }
    if (!out.AddRange(merged).ok()) return std::nullopt;  // empty intersection
  }
  for (const RangeClause& rb : b.ranges_) {
    if (a.FindRange(rb.attr) == nullptr) {
      if (!out.AddRange(rb).ok()) return std::nullopt;
    }
  }
  // Sets: intersect code lists.
  for (const SetClause& sa : a.sets_) {
    const SetClause* sb = b.FindSet(sa.attr);
    SetClause merged;
    merged.attr = sa.attr;
    if (sb != nullptr) {
      std::set_intersection(sa.codes.begin(), sa.codes.end(),
                            sb->codes.begin(), sb->codes.end(),
                            std::back_inserter(merged.codes));
    } else {
      merged.codes = sa.codes;
    }
    if (!out.AddSet(std::move(merged)).ok()) return std::nullopt;
  }
  for (const SetClause& sb : b.sets_) {
    if (a.FindSet(sb.attr) == nullptr) {
      if (!out.AddSet(sb).ok()) return std::nullopt;
    }
  }
  return out;
}

Predicate Predicate::WithRange(const RangeClause& clause) const {
  Predicate out;
  for (const RangeClause& r : ranges_) {
    if (r.attr != clause.attr) InsertSorted(&out.ranges_, r);
  }
  for (const SetClause& s : sets_) {
    if (s.attr != clause.attr) InsertSorted(&out.sets_, s);
  }
  InsertSorted(&out.ranges_, clause);
  return out;
}

Predicate Predicate::WithSet(SetClause clause) const {
  Predicate out;
  for (const RangeClause& r : ranges_) {
    if (r.attr != clause.attr) InsertSorted(&out.ranges_, r);
  }
  for (const SetClause& s : sets_) {
    if (s.attr != clause.attr) InsertSorted(&out.sets_, s);
  }
  std::sort(clause.codes.begin(), clause.codes.end());
  clause.codes.erase(std::unique(clause.codes.begin(), clause.codes.end()),
                     clause.codes.end());
  InsertSorted(&out.sets_, std::move(clause));
  return out;
}

double Predicate::Volume(const DomainMap& domains) const {
  double vol = 1.0;
  for (const RangeClause& r : ranges_) {
    auto it = domains.find(r.attr);
    if (it == domains.end()) continue;
    double width = it->second.hi - it->second.lo;
    if (width <= 0.0) continue;  // degenerate domain: clause can't narrow it
    double lo = std::max(r.lo, it->second.lo);
    double hi = std::min(r.hi, it->second.hi);
    vol *= std::max(0.0, hi - lo) / width;
  }
  for (const SetClause& s : sets_) {
    auto it = domains.find(s.attr);
    if (it == domains.end()) continue;
    if (it->second.cardinality <= 0) continue;
    vol *= static_cast<double>(s.codes.size()) /
           static_cast<double>(it->second.cardinality);
  }
  return vol;
}

std::string Predicate::ToString(const Table* table) const {
  if (IsTrue()) return "TRUE";
  std::vector<std::string> parts;
  // Emit in global attribute order for canonical output.
  size_t ri = 0, si = 0;
  while (ri < ranges_.size() || si < sets_.size()) {
    bool take_range =
        si >= sets_.size() ||
        (ri < ranges_.size() && ranges_[ri].attr < sets_[si].attr);
    if (take_range) {
      const RangeClause& r = ranges_[ri++];
      std::ostringstream os;
      os << r.attr << " in [" << FormatDouble(r.lo) << ", "
         << FormatDouble(r.hi) << (r.hi_inclusive ? "]" : ")");
      parts.push_back(os.str());
    } else {
      const SetClause& s = sets_[si++];
      std::ostringstream os;
      os << s.attr << " in {";
      const Column* col = nullptr;
      if (table != nullptr) {
        auto res = table->ColumnByName(s.attr);
        if (res.ok()) col = *res;
      }
      for (size_t i = 0; i < s.codes.size(); ++i) {
        if (i > 0) os << ", ";
        if (col != nullptr && s.codes[i] >= 0 &&
            s.codes[i] < col->Cardinality()) {
          os << "'" << col->dictionary()[static_cast<size_t>(s.codes[i])]
             << "'";
        } else {
          os << s.codes[i];
        }
      }
      os << "}";
      parts.push_back(os.str());
    }
  }
  return Join(parts, " & ");
}

}  // namespace scorpion
