#include "predicate/predicate.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "predicate/filter_kernels.h"
#include "table/block_stats.h"

namespace scorpion {

// --- Clauses ----------------------------------------------------------------

bool RangeClause::ContainsClause(const RangeClause& other) const {
  if (other.lo < lo) return false;
  if (hi_inclusive) {
    // [lo, hi] contains [other.lo, other.hi(] or )) whenever other.hi <= hi.
    return other.hi <= hi;
  }
  // [lo, hi): an inclusive-hi inner clause must end strictly before hi.
  if (other.hi_inclusive) return other.hi < hi;
  return other.hi <= hi;
}

bool SetClause::Contains(int32_t code) const {
  return std::binary_search(codes.begin(), codes.end(), code);
}

bool SetClause::ContainsClause(const SetClause& other) const {
  return std::includes(codes.begin(), codes.end(), other.codes.begin(),
                       other.codes.end());
}

// --- Domains ----------------------------------------------------------------

Result<DomainMap> ComputeDomains(const Table& table,
                                 const std::vector<std::string>& attrs) {
  DomainMap out;
  for (const std::string& attr : attrs) {
    SCORPION_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(attr));
    AttrDomain d;
    d.type = col->type();
    if (col->type() == DataType::kDouble) {
      SCORPION_ASSIGN_OR_RETURN(d.lo, col->Min());
      SCORPION_ASSIGN_OR_RETURN(d.hi, col->Max());
    } else {
      d.cardinality = col->Cardinality();
    }
    out.emplace(attr, d);
  }
  return out;
}

// --- Predicate building ------------------------------------------------------

namespace {

template <typename ClauseT>
typename std::vector<ClauseT>::const_iterator FindByAttr(
    const std::vector<ClauseT>& clauses, const std::string& attr) {
  return std::find_if(clauses.begin(), clauses.end(),
                      [&](const ClauseT& c) { return c.attr == attr; });
}

template <typename ClauseT>
void InsertSorted(std::vector<ClauseT>* clauses, ClauseT clause) {
  auto pos = std::lower_bound(
      clauses->begin(), clauses->end(), clause,
      [](const ClauseT& a, const ClauseT& b) { return a.attr < b.attr; });
  clauses->insert(pos, std::move(clause));
}

}  // namespace

Status Predicate::AddRange(const RangeClause& clause) {
  if (FindByAttr(sets_, clause.attr) != sets_.end()) {
    return Status::InvalidArgument("attribute '" + clause.attr +
                                   "' already has a set clause");
  }
  bool empty_range = clause.hi_inclusive ? clause.lo > clause.hi
                                         : clause.lo >= clause.hi;
  if (empty_range) {
    return Status::InvalidArgument("empty range for '" + clause.attr + "'");
  }
  auto it = FindByAttr(ranges_, clause.attr);
  if (it != ranges_.end()) {
    return Status::InvalidArgument("attribute '" + clause.attr +
                                   "' already has a range clause");
  }
  InsertSorted(&ranges_, clause);
  return Status::OK();
}

Status Predicate::AddSet(SetClause clause) {
  if (FindByAttr(ranges_, clause.attr) != ranges_.end()) {
    return Status::InvalidArgument("attribute '" + clause.attr +
                                   "' already has a range clause");
  }
  if (FindByAttr(sets_, clause.attr) != sets_.end()) {
    return Status::InvalidArgument("attribute '" + clause.attr +
                                   "' already has a set clause");
  }
  std::sort(clause.codes.begin(), clause.codes.end());
  clause.codes.erase(std::unique(clause.codes.begin(), clause.codes.end()),
                     clause.codes.end());
  if (clause.codes.empty()) {
    return Status::InvalidArgument("empty code set for '" + clause.attr + "'");
  }
  InsertSorted(&sets_, std::move(clause));
  return Status::OK();
}

const RangeClause* Predicate::FindRange(const std::string& attr) const {
  auto it = FindByAttr(ranges_, attr);
  return it == ranges_.end() ? nullptr : &*it;
}

const SetClause* Predicate::FindSet(const std::string& attr) const {
  auto it = FindByAttr(sets_, attr);
  return it == sets_.end() ? nullptr : &*it;
}

std::vector<std::string> Predicate::Attributes() const {
  std::vector<std::string> out;
  out.reserve(ranges_.size() + sets_.size());
  for (const auto& r : ranges_) out.push_back(r.attr);
  for (const auto& s : sets_) out.push_back(s.attr);
  std::sort(out.begin(), out.end());
  return out;
}

// --- Evaluation ---------------------------------------------------------------

Result<BoundPredicate> Predicate::Bind(const Table& table) const {
  BoundPredicate bound;
  bound.num_rows_ = table.num_rows();
  bound.bound_generation_ = table.generation();
  bound.table_ = &table;
  bound.pruning_enabled_ = BlockPruningDefault();
  bound.prune_stats_ = &GlobalBlockPruningStats();
  for (const RangeClause& r : ranges_) {
    SCORPION_ASSIGN_OR_RETURN(int col_idx, table.ColumnIndex(r.attr));
    const Column* col = &table.column(col_idx);
    if (col->type() != DataType::kDouble) {
      return Status::TypeError("range clause on categorical attribute '" +
                               r.attr + "'");
    }
    bound.ranges_.push_back(
        {&col->doubles(), r.lo, r.hi, r.hi_inclusive, col_idx});
  }
  for (const SetClause& s : sets_) {
    SCORPION_ASSIGN_OR_RETURN(int col_idx, table.ColumnIndex(s.attr));
    const Column* col = &table.column(col_idx);
    if (col->type() != DataType::kCategorical) {
      return Status::TypeError("set clause on continuous attribute '" +
                               s.attr + "'");
    }
    BoundPredicate::BoundSet bs;
    bs.codes = &col->codes();
    bs.col = col_idx;
    bs.member.assign(static_cast<size_t>(col->Cardinality()), 0);
    // Same hash rule as the stats builder: identity when the cardinality
    // fits the bitset, code & (kBlockCodeBits - 1) otherwise.
    bs.exact_bits = bs.member.size() <= kBlockCodeBits;
    std::fill(std::begin(bs.query_bits), std::end(bs.query_bits), 0);
    for (int32_t code : s.codes) {
      if (code >= 0 && static_cast<size_t>(code) < bs.member.size()) {
        bs.member[static_cast<size_t>(code)] = 1;
        const uint32_t bit =
            static_cast<uint32_t>(code) & (kBlockCodeBits - 1);
        bs.query_bits[bit >> 6] |= uint64_t{1} << (bit & 63);
      }
    }
    bound.sets_.push_back(std::move(bs));
  }
  if (bound.num_rows_ > 0 && !(bound.ranges_.empty() && bound.sets_.empty())) {
    bound.block_stats_ = table.block_stats();
  }
  return bound;
}

Result<bool> Predicate::MatchesRow(const Table& table, RowId row) const {
  SCORPION_ASSIGN_OR_RETURN(BoundPredicate bound, Bind(table));
  return bound.Matches(row);
}

Result<RowIdList> Predicate::Evaluate(const Table& table) const {
  SCORPION_ASSIGN_OR_RETURN(BoundPredicate bound, Bind(table));
  SCORPION_ASSIGN_OR_RETURN(Selection matched, bound.FilterAll());
  return matched.rows();
}

void BoundPredicate::CheckNotStale() const {
  SCORPION_CHECK(table_ == nullptr || table_->num_rows() == num_rows_,
                 "BoundPredicate evaluated after its Table was appended to; "
                 "re-Bind() the predicate");
}

Status BoundPredicate::StaleStatus() const {
  if (table_ == nullptr || table_->num_rows() == num_rows_) {
    return Status::OK();
  }
  return Status::FailedPrecondition(
      "BoundPredicate bound at generation " +
      std::to_string(bound_generation_) + " (" + std::to_string(num_rows_) +
      " rows) evaluated against generation " +
      std::to_string(table_->generation()) + " (" +
      std::to_string(table_->num_rows()) +
      " rows); re-Bind() against a frozen snapshot");
}

bool BoundPredicate::Matches(RowId row) const {
  SCORPION_DCHECK(table_ == nullptr || table_->num_rows() == num_rows_,
                  "BoundPredicate::Matches after the Table was appended to");
  for (const BoundRange& r : ranges_) {
    double v = (*r.values)[row];
    if (v < r.lo) return false;
    if (r.hi_inclusive ? v > r.hi : v >= r.hi) return false;
  }
  for (const BoundSet& s : sets_) {
    int32_t code = (*s.codes)[row];
    if (static_cast<size_t>(code) >= s.member.size() || !s.member[code]) {
      return false;
    }
  }
  return true;
}

// The byte-mask kernels live in predicate/filter_kernels.{h,cc}, shared
// with the candidate-batched data plane (candidate_batch.cc). They mirror
// Matches() exactly — including its NaN behaviour (NaN fails neither
// `v < lo` nor `v > hi`, so NaN rows match a range) — so vectorized and
// scalar evaluation stay bit-identical. Each clause is one branch-free pass
// over its column; the first clause writes the mask, later clauses AND into
// it, so no mask initialization pass is needed. See filter_kernels.cc for
// the AVX2 / AVX-512 target_clones dispatch story.

namespace {

using kernels::PackMaskIntoWords;
using kernels::RangeMaskDense;
using kernels::RangeMaskGather;
using kernels::SetMaskDense;
using kernels::SetMaskGather;
using kernels::SumMask;

/// Per-thread mask scratch: filter calls are frequent and short-lived, and
/// the mask never escapes a call, so one growable buffer per thread removes
/// the allocation + clear from every evaluation. Memory held is bounded by
/// the largest table filtered on the thread.
std::vector<uint8_t>& MaskScratch(size_t n) {
  thread_local std::vector<uint8_t> scratch;
  if (scratch.size() < n) scratch.resize(n);
  return scratch;
}

/// Parallelize per-block work only when there is enough of it to amortize
/// the ParallelFor handoff.
constexpr size_t kMinBlocksForParallel = 4;

}  // namespace

void BoundPredicate::FillMaskGather(const RowId* rows, size_t n,
                                    uint8_t* mask) const {
  bool first = true;
  for (const BoundRange& r : ranges_) {
    RangeMaskGather(r.values->data(), rows, n, r.lo, r.hi, r.hi_inclusive,
                    first, mask);
    first = false;
  }
  for (const BoundSet& s : sets_) {
    SetMaskGather(s.codes->data(), rows, n, s.member.data(), first, mask);
    first = false;
  }
}

void BoundPredicate::FillMaskDenseRange(size_t begin, size_t end,
                                        uint8_t* mask) const {
  const size_t n = end - begin;
  bool first = true;
  for (const BoundRange& r : ranges_) {
    RangeMaskDense(r.values->data() + begin, n, r.lo, r.hi, r.hi_inclusive,
                   first, mask);
    first = false;
  }
  for (const BoundSet& s : sets_) {
    SetMaskDense(s.codes->data() + begin, n, s.member.data(), first, mask);
    first = false;
  }
}

bool BoundPredicate::PreparePlan(PruningPlan* plan) const {
  if (!pruning_enabled_ || block_stats_ == nullptr) return false;
  plan->stats = block_stats_;
  plan->range_stats.reserve(ranges_.size());
  for (const BoundRange& r : ranges_) {
    plan->range_stats.push_back(plan->stats->ForColumn(r.col).data());
  }
  plan->set_stats.reserve(sets_.size());
  for (const BoundSet& s : sets_) {
    const BlockStat* stats = plan->stats->ForColumn(s.col).data();
    // Exactness is a pure function of the cardinality, which cannot change
    // without an append (which invalidates both the stats and this bound
    // predicate) — so bind-time and build-time verdicts agree.
    SCORPION_DCHECK(plan->stats->CodeBitsExact(s.col) == s.exact_bits,
                    "code bitset exactness diverged between stats and bind");
    plan->set_stats.push_back(stats);
  }
  return true;
}

BlockMatch BoundPredicate::ClassifyBlock(const PruningPlan& plan,
                                         size_t b) const {
  const size_t rows_in_block =
      plan.stats->block_end(b) - plan.stats->block_begin(b);
  BlockMatch verdict = BlockMatch::kAll;
  for (size_t i = 0; i < ranges_.size(); ++i) {
    const BoundRange& r = ranges_[i];
    const BlockMatch m = ClassifyRangeBlock(plan.range_stats[i][b],
                                            rows_in_block, r.lo, r.hi,
                                            r.hi_inclusive);
    if (m == BlockMatch::kNone) return BlockMatch::kNone;
    if (m == BlockMatch::kPartial) verdict = BlockMatch::kPartial;
  }
  for (size_t i = 0; i < sets_.size(); ++i) {
    const BoundSet& s = sets_[i];
    const BlockMatch m =
        ClassifySetBlock(plan.set_stats[i][b], s.query_bits, s.exact_bits);
    if (m == BlockMatch::kNone) return BlockMatch::kNone;
    if (m == BlockMatch::kPartial) verdict = BlockMatch::kPartial;
  }
  return verdict;
}

namespace {

/// One maximal run of a sorted sparse input falling inside a single
/// statistics block, with the block's conjunction verdict.
struct SparseSpan {
  size_t block;
  size_t lo, hi;  // index range into the input row vector
  BlockMatch verdict;
};

/// Splits a sorted row vector into per-block spans and classifies each
/// block through `classify`. The span vector is thread-local scratch:
/// valid until the calling thread's next ComputeSparseSpans call — which,
/// under ThreadPool's help-first stealing, can happen in the middle of a
/// blocked ParallelFor (a stolen task may run a whole filter on this
/// thread). Callers that dispatch to a pool must copy the spans first.
template <typename Classify>
std::vector<SparseSpan>& ComputeSparseSpans(const RowIdList& rows,
                                            const Classify& classify) {
  thread_local std::vector<SparseSpan> spans;
  spans.clear();
  const size_t n = rows.size();
  size_t i = 0;
  while (i < n) {
    const size_t b = static_cast<size_t>(rows[i]) / kBlockSize;
    const size_t limit = (b + 1) * kBlockSize;
    const size_t j = static_cast<size_t>(
        std::partition_point(
            rows.begin() + static_cast<ptrdiff_t>(i), rows.end(),
            [&](RowId r) { return static_cast<size_t>(r) < limit; }) -
        rows.begin());
    spans.push_back({b, i, j, classify(b)});
    i = j;
  }
  return spans;
}

/// \brief One pruned evaluation over a sorted sparse row vector — the core
/// shared by Filter(Selection) and Count(Selection): span classification,
/// pruning counters, gather kernels on PARTIAL spans, per-span kept counts
/// in disjoint slots. Filter compacts via spans()/mask(); Count just reads
/// total_kept().
///
/// A top-level pool dispatch blocks in ThreadPool's help-first loop, where
/// the calling thread can execute OTHER producers' queued tasks; any filter
/// work they run reuses this thread's MaskScratch / ComputeSparseSpans
/// buffers while this run still reads them after the join. The parallel
/// path therefore snapshots the spans and fills a function-local mask; the
/// serial path — including nested-inline calls, which never steal — keeps
/// the zero-allocation thread-local scratch. When no span is PARTIAL the
/// verdicts alone decide: the kernels never run and the mask is neither
/// allocated nor cleared.
///
/// Must stay a function-local value: spans()/mask() can point into members.
class SparsePrunedRun {
 public:
  /// `classify` maps a block index to its conjunction verdict; `fill` is
  /// the gather kernel (rows, len, mask) for PARTIAL spans.
  template <typename Classify, typename Fill>
  SparsePrunedRun(const RowIdList& rows, ThreadPool* pool,
                  BlockPruningStats* pstats, const Classify& classify,
                  const Fill& fill) {
    std::vector<SparseSpan>& tl_spans = ComputeSparseSpans(rows, classify);
    bool any_partial = false;
    for (const SparseSpan& sp : tl_spans) {
      if (sp.verdict == BlockMatch::kPartial) {
        any_partial = true;
        break;
      }
    }
    const bool parallel = any_partial && pool != nullptr &&
                          !ThreadPool::InParallelBody() &&
                          tl_spans.size() >= kMinBlocksForParallel;
    if (parallel) {
      span_storage_ = tl_spans;
      // Uninitialized on purpose (matching MaskScratch's no-clear reuse):
      // the gather kernels fully overwrite PARTIAL spans' ranges and
      // nothing reads the mask outside them, so an O(rows) zero-fill would
      // only tax the heavily-pruned inputs this path exists to speed up.
      mask_storage_.reset(new uint8_t[rows.size()]);
      spans_ = &span_storage_;
      mask_ = mask_storage_.get();
    } else {
      spans_ = &tl_spans;
      mask_ = any_partial ? MaskScratch(rows.size()).data() : nullptr;
    }
    const std::vector<SparseSpan>& spans = *spans_;
    kept_.assign(spans.size(), 0);
    auto do_span = [&](size_t si) {
      const SparseSpan& sp = spans[si];
      const size_t len = sp.hi - sp.lo;
      switch (sp.verdict) {
        case BlockMatch::kNone:
          ++pstats->blocks_pruned_none;
          pstats->rows_skipped_by_pruning += len;
          break;
        case BlockMatch::kAll:
          ++pstats->blocks_pruned_all;
          pstats->rows_skipped_by_pruning += len;
          kept_[si] = len;
          break;
        case BlockMatch::kPartial:
          ++pstats->blocks_partial;
          fill(rows.data() + sp.lo, len, mask_ + sp.lo);
          kept_[si] = SumMask(mask_ + sp.lo, len);
          break;
      }
    };
    if (parallel) {
      // On this branch spans_/mask_ point at the span_storage_/mask_storage_
      // snapshots made above, never at the thread-local scratch (class
      // comment). scratch-escape-audited: parallel branch uses snapshots.
      pool->ParallelFor(0, spans.size(), do_span);
    } else {
      for (size_t si = 0; si < spans.size(); ++si) do_span(si);
    }
    for (size_t k : kept_) total_kept_ += k;
  }

  SCORPION_DISALLOW_COPY_AND_ASSIGN(SparsePrunedRun);

  /// Spans in block order.
  const std::vector<SparseSpan>& spans() const { return *spans_; }
  /// Gather mask aligned with the input rows; valid only over PARTIAL
  /// spans' index ranges (nullptr when no span is PARTIAL).
  const uint8_t* mask() const { return mask_; }
  /// Total matching rows across all spans.
  size_t total_kept() const { return total_kept_; }

 private:
  std::vector<SparseSpan> span_storage_;     // parallel-path span snapshot
  std::unique_ptr<uint8_t[]> mask_storage_;  // parallel-path mask
  const std::vector<SparseSpan>* spans_ = nullptr;
  uint8_t* mask_ = nullptr;
  std::vector<size_t> kept_;
  size_t total_kept_ = 0;
};

/// Shared pruned-dense driver for FilterAll / Count over all rows:
/// classifies every block, updates counters, calls `on_all(begin, end)` on
/// ALL blocks and `fill` + `consume(mask, begin, end)` on PARTIAL blocks,
/// and returns the total kept count. Block-parallel when a pool is
/// attached: blocks own disjoint outputs (kBlockSize is a multiple of 64,
/// so bitmap word ranges don't overlap), per-block counts land in slots,
/// and the sum stays serial in block order. Unlike the sparse paths,
/// MaskScratch here is acquired and fully consumed inside one task
/// invocation, so a help-first-stolen task clobbering the thread-local
/// scratch between tasks is harmless.
template <typename Classify, typename Fill, typename OnAll, typename Consume>
size_t RunPrunedDenseBlocks(const TableBlockStats& stats, ThreadPool* pool,
                            BlockPruningStats* pstats,
                            const Classify& classify, const Fill& fill,
                            const OnAll& on_all, const Consume& consume) {
  const size_t nb = stats.num_blocks();
  auto do_block = [&](size_t b) -> size_t {
    const size_t begin = stats.block_begin(b);
    const size_t end = stats.block_end(b);
    switch (classify(b)) {
      case BlockMatch::kNone:
        ++pstats->blocks_pruned_none;
        pstats->rows_skipped_by_pruning += end - begin;
        return 0;
      case BlockMatch::kAll:
        ++pstats->blocks_pruned_all;
        pstats->rows_skipped_by_pruning += end - begin;
        on_all(begin, end);
        return end - begin;
      case BlockMatch::kPartial:
        break;
    }
    ++pstats->blocks_partial;
    uint8_t* mask = MaskScratch(end - begin).data();
    fill(begin, end, mask);
    return consume(mask, begin, end);
  };
  size_t total = 0;
  if (pool != nullptr && nb >= kMinBlocksForParallel) {
    std::vector<size_t> counts(nb, 0);
    pool->ParallelFor(0, nb, [&](size_t b) { counts[b] = do_block(b); });
    for (size_t c : counts) total += c;
  } else {
    for (size_t b = 0; b < nb; ++b) total += do_block(b);
  }
  return total;
}

}  // namespace

Result<Selection> BoundPredicate::Filter(const Selection& input) const {
  SCORPION_RETURN_NOT_OK(StaleStatus());
  SCORPION_CHECK(input.universe_size() == num_rows_,
                 "Filter input universe does not match the bound table");
  if (ranges_.empty() && sets_.empty()) return input;  // TRUE predicate
  if (input.IsAll()) return FilterAll();
  const RowIdList& rows = input.rows();
  const size_t n = rows.size();
  PruningPlan plan;
  if (n > 0 && PreparePlan(&plan)) {
    SparsePrunedRun run(
        rows, pool_, prune_stats_,
        [&](size_t b) { return ClassifyBlock(plan, b); },
        [&](const RowId* r, size_t len, uint8_t* m) {
          FillMaskGather(r, len, m);
        });
    // Serial compaction in block order — output is identical at every
    // thread count.
    const uint8_t* mask = run.mask();
    RowIdList out;
    out.reserve(run.total_kept());
    for (const SparseSpan& sp : run.spans()) {
      if (sp.verdict == BlockMatch::kNone) continue;
      if (sp.verdict == BlockMatch::kAll) {
        // Dense range-append: the whole span matches, no mask to consult.
        out.insert(out.end(), rows.begin() + static_cast<ptrdiff_t>(sp.lo),
                   rows.begin() + static_cast<ptrdiff_t>(sp.hi));
        continue;
      }
      for (size_t i = sp.lo; i < sp.hi; ++i) {
        if (mask[i]) out.push_back(rows[i]);
      }
    }
    return Selection::FromSorted(std::move(out), num_rows_);
  }
  uint8_t* mask = MaskScratch(n).data();
  FillMaskGather(rows.data(), n, mask);
  RowIdList out;
  out.reserve(SumMask(mask, n));
  for (size_t i = 0; i < n; ++i) {
    if (mask[i]) out.push_back(rows[i]);
  }
  return Selection::FromSorted(std::move(out), num_rows_);
}

Result<Selection> BoundPredicate::FilterAll() const {
  SCORPION_RETURN_NOT_OK(StaleStatus());
  const size_t n = num_rows_;
  if (ranges_.empty() && sets_.empty()) return Selection::All(n);
  std::vector<uint64_t> words((n + 63) / 64, 0);
  size_t count = 0;
  PruningPlan plan;
  if (PreparePlan(&plan)) {
    count = RunPrunedDenseBlocks(
        *plan.stats, pool_, prune_stats_,
        [&](size_t b) { return ClassifyBlock(plan, b); },
        [&](size_t begin, size_t end, uint8_t* mask) {
          FillMaskDenseRange(begin, end, mask);
        },
        [&](size_t begin, size_t end) { BitmapSetRange(&words, begin, end); },
        [&](const uint8_t* mask, size_t begin, size_t end) {
          return PackMaskIntoWords(mask, begin, end, words.data());
        });
  } else {
    uint8_t* mask = MaskScratch(n).data();
    FillMaskDenseRange(0, n, mask);
    count = PackMaskIntoWords(mask, 0, n, words.data());
  }
  return Selection::FromBitmapCounted(std::move(words), n, count);
}

Result<size_t> BoundPredicate::Count(const Selection& input) const {
  SCORPION_RETURN_NOT_OK(StaleStatus());
  SCORPION_CHECK(input.universe_size() == num_rows_,
                 "Count input universe does not match the bound table");
  if (ranges_.empty() && sets_.empty()) return input.size();
  PruningPlan plan;
  if (input.IsAll()) {
    // Dense mask + byte sum; no bitmap materialization for a bare count.
    const size_t n = num_rows_;
    if (PreparePlan(&plan)) {
      return RunPrunedDenseBlocks(
          *plan.stats, pool_, prune_stats_,
          [&](size_t b) { return ClassifyBlock(plan, b); },
          [&](size_t begin, size_t end, uint8_t* mask) {
            FillMaskDenseRange(begin, end, mask);
          },
          [](size_t, size_t) {},  // a bare count materializes nothing
          [](const uint8_t* mask, size_t begin, size_t end) {
            return SumMask(mask, end - begin);
          });
    }
    uint8_t* mask = MaskScratch(n).data();
    FillMaskDenseRange(0, n, mask);
    return SumMask(mask, n);
  }
  const RowIdList& rows = input.rows();
  const size_t n = rows.size();
  if (n > 0 && PreparePlan(&plan)) {
    SparsePrunedRun run(
        rows, pool_, prune_stats_,
        [&](size_t b) { return ClassifyBlock(plan, b); },
        [&](const RowId* r, size_t len, uint8_t* m) {
          FillMaskGather(r, len, m);
        });
    return run.total_kept();
  }
  uint8_t* mask = MaskScratch(n).data();
  FillMaskGather(rows.data(), n, mask);
  return SumMask(mask, n);
}

RowIdList BoundPredicate::Filter(const RowIdList& rows) const {
  CheckNotStale();
  RowIdList out;
  out.reserve(rows.size());
  for (RowId r : rows) {
    if (Matches(r)) out.push_back(r);
  }
  return out;
}

size_t BoundPredicate::CountMatches(const RowIdList& rows) const {
  CheckNotStale();
  size_t n = 0;
  for (RowId r : rows) {
    if (Matches(r)) ++n;
  }
  return n;
}

// --- Algebra -------------------------------------------------------------------

bool Predicate::SyntacticallyContains(const Predicate& outer,
                                      const Predicate& inner) {
  for (const RangeClause& ro : outer.ranges_) {
    const RangeClause* ri = inner.FindRange(ro.attr);
    if (ri == nullptr || !ro.ContainsClause(*ri)) return false;
  }
  for (const SetClause& so : outer.sets_) {
    const SetClause* si = inner.FindSet(so.attr);
    if (si == nullptr || !so.ContainsClause(*si)) return false;
  }
  return true;
}

Predicate Predicate::BoundingBox(const Predicate& a, const Predicate& b) {
  Predicate out;
  for (const RangeClause& ra : a.ranges_) {
    const RangeClause* rb = b.FindRange(ra.attr);
    if (rb == nullptr) continue;  // unconstrained in b -> unconstrained hull
    RangeClause hull;
    hull.attr = ra.attr;
    hull.lo = std::min(ra.lo, rb->lo);
    if (ra.hi > rb->hi) {
      hull.hi = ra.hi;
      hull.hi_inclusive = ra.hi_inclusive;
    } else if (rb->hi > ra.hi) {
      hull.hi = rb->hi;
      hull.hi_inclusive = rb->hi_inclusive;
    } else {
      hull.hi = ra.hi;
      hull.hi_inclusive = ra.hi_inclusive || rb->hi_inclusive;
    }
    out.AddRange(hull).ok();  // cannot fail: hull is non-empty by construction
  }
  for (const SetClause& sa : a.sets_) {
    const SetClause* sb = b.FindSet(sa.attr);
    if (sb == nullptr) continue;
    SetClause hull;
    hull.attr = sa.attr;
    hull.codes.reserve(sa.codes.size() + sb->codes.size());
    std::set_union(sa.codes.begin(), sa.codes.end(), sb->codes.begin(),
                   sb->codes.end(), std::back_inserter(hull.codes));
    out.AddSet(std::move(hull)).ok();
  }
  return out;
}

std::optional<Predicate> Predicate::Intersect(const Predicate& a,
                                              const Predicate& b) {
  Predicate out;
  // Ranges: take a's clauses, narrowing where b also constrains.
  for (const RangeClause& ra : a.ranges_) {
    const RangeClause* rb = b.FindRange(ra.attr);
    RangeClause merged = ra;
    if (rb != nullptr) {
      merged.lo = std::max(ra.lo, rb->lo);
      if (ra.hi < rb->hi) {
        merged.hi = ra.hi;
        merged.hi_inclusive = ra.hi_inclusive;
      } else if (rb->hi < ra.hi) {
        merged.hi = rb->hi;
        merged.hi_inclusive = rb->hi_inclusive;
      } else {
        merged.hi = ra.hi;
        merged.hi_inclusive = ra.hi_inclusive && rb->hi_inclusive;
      }
    }
    if (!out.AddRange(merged).ok()) return std::nullopt;  // empty intersection
  }
  for (const RangeClause& rb : b.ranges_) {
    if (a.FindRange(rb.attr) == nullptr) {
      if (!out.AddRange(rb).ok()) return std::nullopt;
    }
  }
  // Sets: intersect code lists.
  for (const SetClause& sa : a.sets_) {
    const SetClause* sb = b.FindSet(sa.attr);
    SetClause merged;
    merged.attr = sa.attr;
    if (sb != nullptr) {
      std::set_intersection(sa.codes.begin(), sa.codes.end(),
                            sb->codes.begin(), sb->codes.end(),
                            std::back_inserter(merged.codes));
    } else {
      merged.codes = sa.codes;
    }
    if (!out.AddSet(std::move(merged)).ok()) return std::nullopt;
  }
  for (const SetClause& sb : b.sets_) {
    if (a.FindSet(sb.attr) == nullptr) {
      if (!out.AddSet(sb).ok()) return std::nullopt;
    }
  }
  return out;
}

Predicate Predicate::WithRange(const RangeClause& clause) const {
  Predicate out;
  for (const RangeClause& r : ranges_) {
    if (r.attr != clause.attr) InsertSorted(&out.ranges_, r);
  }
  for (const SetClause& s : sets_) {
    if (s.attr != clause.attr) InsertSorted(&out.sets_, s);
  }
  InsertSorted(&out.ranges_, clause);
  return out;
}

Predicate Predicate::WithSet(SetClause clause) const {
  Predicate out;
  for (const RangeClause& r : ranges_) {
    if (r.attr != clause.attr) InsertSorted(&out.ranges_, r);
  }
  for (const SetClause& s : sets_) {
    if (s.attr != clause.attr) InsertSorted(&out.sets_, s);
  }
  std::sort(clause.codes.begin(), clause.codes.end());
  clause.codes.erase(std::unique(clause.codes.begin(), clause.codes.end()),
                     clause.codes.end());
  InsertSorted(&out.sets_, std::move(clause));
  return out;
}

double Predicate::Volume(const DomainMap& domains) const {
  double vol = 1.0;
  for (const RangeClause& r : ranges_) {
    auto it = domains.find(r.attr);
    if (it == domains.end()) continue;
    double width = it->second.hi - it->second.lo;
    if (width <= 0.0) continue;  // degenerate domain: clause can't narrow it
    double lo = std::max(r.lo, it->second.lo);
    double hi = std::min(r.hi, it->second.hi);
    vol *= std::max(0.0, hi - lo) / width;
  }
  for (const SetClause& s : sets_) {
    auto it = domains.find(s.attr);
    if (it == domains.end()) continue;
    if (it->second.cardinality <= 0) continue;
    vol *= static_cast<double>(s.codes.size()) /
           static_cast<double>(it->second.cardinality);
  }
  return vol;
}

std::string Predicate::ToString(const Table* table) const {
  if (IsTrue()) return "TRUE";
  std::vector<std::string> parts;
  // Emit in global attribute order for canonical output.
  size_t ri = 0, si = 0;
  while (ri < ranges_.size() || si < sets_.size()) {
    bool take_range =
        si >= sets_.size() ||
        (ri < ranges_.size() && ranges_[ri].attr < sets_[si].attr);
    if (take_range) {
      const RangeClause& r = ranges_[ri++];
      std::ostringstream os;
      os << r.attr << " in [" << FormatDouble(r.lo) << ", "
         << FormatDouble(r.hi) << (r.hi_inclusive ? "]" : ")");
      parts.push_back(os.str());
    } else {
      const SetClause& s = sets_[si++];
      std::ostringstream os;
      os << s.attr << " in {";
      const Column* col = nullptr;
      if (table != nullptr) {
        auto res = table->ColumnByName(s.attr);
        if (res.ok()) col = *res;
      }
      for (size_t i = 0; i < s.codes.size(); ++i) {
        if (i > 0) os << ", ";
        if (col != nullptr && s.codes[i] >= 0 &&
            s.codes[i] < col->Cardinality()) {
          os << "'" << col->dictionary()[static_cast<size_t>(s.codes[i])]
             << "'";
        } else {
          os << s.codes[i];
        }
      }
      os << "}";
      parts.push_back(os.str());
    }
  }
  return Join(parts, " & ");
}

}  // namespace scorpion
