// Branch-free byte-mask filter kernels shared by the single-predicate data
// plane (predicate.cc) and the candidate-batched one (candidate_batch.cc).
//
// Each kernel is one pass over a column producing (or ANDing into) a 0/1
// byte mask. The kernels mirror BoundPredicate::Matches() exactly —
// including its NaN behaviour (NaN fails neither `v < lo` nor `v > hi`, so
// NaN rows match a range) — so vectorized and scalar evaluation stay
// bit-identical. `first` resolves outside the loop whether the clause
// writes the mask or ANDs into it, so no mask initialization pass is ever
// needed.
//
// Definitions live in filter_kernels.cc and are compiled with target_clones
// (AVX2 / AVX-512 dispatch) where the toolchain supports it; see the
// SCORPION_KERNEL_CLONES comment there.
#pragma once

#include <cstddef>
#include <cstdint>

#include "table/types.h"

namespace scorpion {
namespace kernels {

/// Dense range mask over v[0, n): writes (first) or ANDs (!first)
/// `lo <= v[i] <(=) hi` into m[i].
void RangeMaskDense(const double* v, size_t n, double lo, double hi,
                    bool hi_inclusive, bool first, uint8_t* m);

/// Gather range mask: same predicate over v[rows[i]].
void RangeMaskGather(const double* v, const RowId* rows, size_t n, double lo,
                     double hi, bool hi_inclusive, bool first, uint8_t* m);

/// Dense set-membership mask: member[codes[i]] into m[i]. `member` must
/// cover the column's full code range.
void SetMaskDense(const int32_t* codes, size_t n, const uint8_t* member,
                  bool first, uint8_t* m);

/// Gather set-membership mask over codes[rows[i]].
void SetMaskGather(const int32_t* codes, const RowId* rows, size_t n,
                   const uint8_t* member, bool first, uint8_t* m);

/// Packs the 0/1 bytes mask[0 .. end-begin) into `words` at bit positions
/// [begin, end) and returns the popcount. `begin` must be 64-aligned (block
/// starts are: kBlockSize is a multiple of 64).
size_t PackMaskIntoWords(const uint8_t* mask, size_t begin, size_t end,
                         uint64_t* words);

/// Byte-sum of a 0/1 mask.
size_t SumMask(const uint8_t* mask, size_t n);

}  // namespace kernels
}  // namespace scorpion
