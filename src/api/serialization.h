// JSON wire format for the public API types. ExplainRequest / ExplainResponse
// expose ToJson/FromJson as members (declared on the types, implemented
// here); Predicate and ProblemSpec are core types the api layer serializes
// via these free functions, so src/core keeps no JSON dependency.
//
// Every FromJson is strict: malformed documents, type mismatches, out-of-
// domain values, and unknown fields are all InvalidArgument (a document from
// a newer schema is rejected, never half-applied). Every ToJson is
// deterministic and bit-stable through a parse/re-serialize cycle (see
// common/json.h).
#pragma once

#include <string>

#include "common/json.h"
#include "common/result.h"
#include "core/options.h"
#include "core/problem.h"
#include "predicate/predicate.h"
#include "query/groupby.h"
#include "table/table.h"

namespace scorpion {

/// Wire names for the Algorithm enum ("NAIVE" / "DT" / "MC", matching
/// AlgorithmToString) and the InfluenceMode enum ("delete" / "mean_shift").
Result<Algorithm> AlgorithmFromString(const std::string& name);
const char* InfluenceModeToString(InfluenceMode mode);
Result<InfluenceMode> InfluenceModeFromString(const std::string& name);

/// Predicate <-> JSON value tree / document. Set clauses carry dictionary
/// codes; the optional display string on response predicates is where
/// humans look.
JsonValue PredicateToJsonValue(const Predicate& pred);
Result<Predicate> PredicateFromJsonValue(const JsonValue& value);
std::string PredicateToJson(const Predicate& pred);
Result<Predicate> PredicateFromJson(const std::string& json);

/// ProblemSpec <-> JSON (index-based, the resolved form of a request).
JsonValue ProblemSpecToJsonValue(const ProblemSpec& problem);
Result<ProblemSpec> ProblemSpecFromJsonValue(const JsonValue& value);
std::string ProblemSpecToJson(const ProblemSpec& problem);
Result<ProblemSpec> ProblemSpecFromJson(const std::string& json);

/// Table <-> JSON: schema (names + types), row count, and the full encoded
/// column payloads — double values for continuous columns, dictionary plus
/// codes for categorical ones. The deserialized table reproduces the
/// sender's encoding exactly (same dictionary order, same codes), so wire
/// predicates carrying dictionary codes and content fingerprints both stay
/// valid across the hop. Finite doubles ride as JSON numbers (the writer is
/// shortest-round-trip, so the bit pattern survives); non-finite ones as
/// 16-hex-digit bit-pattern strings, preserving NaN payloads.
JsonValue TableToJsonValue(const Table& table);
Result<Table> TableFromJsonValue(const JsonValue& value);
std::string TableToJson(const Table& table);
Result<Table> TableFromJson(const std::string& json);

/// GroupByQuery <-> JSON.
JsonValue GroupByQueryToJsonValue(const GroupByQuery& query);
Result<GroupByQuery> GroupByQueryFromJsonValue(const JsonValue& value);

}  // namespace scorpion
