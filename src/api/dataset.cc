#include "api/dataset.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "core/scorer.h"

namespace scorpion {

namespace {

/// Everything that fixes an ExplainSession's validity except c: the shared
/// annotation serialization (core/problem.h). The table and query result
/// are fixed per Dataset, so unlike the service's ProblemKey no identity
/// prefix is needed. Requests agreeing on this key share cached DT
/// partitions at any c; requests differing in it must NOT share a session —
/// an exact-c hit would hand one problem the other's results.
std::string AnnotationKey(const ProblemSpec& problem, Algorithm algorithm) {
  std::string key;
  AppendAnnotationKey(problem, algorithm, &key);
  return key;
}

/// Assembles the public response from an engine Explanation: ranked
/// predicates with display strings, the per-result what-if view for the
/// winning predicate, and stats. Free-standing so PendingExplanation can
/// build responses without the (possibly moved-from) Dataset.
Result<ExplainResponse> BuildResponse(const Table& table,
                                      const QueryResult& result,
                                      const ProblemSpec& problem,
                                      bool with_what_if,
                                      bool enable_block_pruning,
                                      ThreadPool* pool,
                                      Explanation explanation) {
  ExplainResponse response;
  response.algorithm = explanation.algorithm;
  response.predicates.reserve(explanation.predicates.size());
  for (const ScoredPredicate& sp : explanation.predicates) {
    RankedPredicate rp;
    rp.pred = sp.pred;
    rp.influence = sp.influence;
    rp.display = sp.pred.ToString(&table);
    response.predicates.push_back(std::move(rp));
  }
  response.checkpoints.reserve(explanation.naive_checkpoints.size());
  for (const NaiveCheckpoint& cp : explanation.naive_checkpoints) {
    CheckpointEntry entry;
    entry.elapsed_seconds = cp.elapsed_seconds;
    entry.influence = cp.influence;
    entry.pred = cp.pred;
    response.checkpoints.push_back(std::move(entry));
  }
  response.naive_exhausted = explanation.naive_exhausted;
  response.stats.runtime_seconds = explanation.runtime_seconds;
  response.stats.cache_partitions_hit = explanation.cache_partitions_hit;
  response.stats.cache_result_hit = explanation.cache_result_hit;
  response.stats.predicate_scores = explanation.scorer_stats.predicate_scores;
  response.stats.group_deltas = explanation.scorer_stats.group_deltas;
  response.stats.tuple_scores = explanation.scorer_stats.tuple_scores;
  response.stats.rows_filtered = explanation.scorer_stats.rows_filtered;
  response.stats.match_cache_hits =
      explanation.scorer_stats.match_cache_hits;

  // The built-in what-if view (Figure 2's click-through): every result
  // group's value with the winning predicate's tuples deleted. Costs one
  // pass over the table, so requests can opt out (WithWhatIf(false)).
  if (with_what_if && !response.predicates.empty()) {
    SCORPION_ASSIGN_OR_RETURN(Scorer scorer,
                              Scorer::Make(table, result, problem));
    // The what-if bind follows the engine's data-plane configuration
    // (ScorpionOptions::enable_block_pruning, shared scoring pool) like
    // every scorer-internal bind, and reports pruning counters into this
    // scorer's sink rather than the process-global one.
    scorer.set_enable_block_pruning(enable_block_pruning);
    scorer.set_thread_pool(pool);
    const Predicate& best = response.predicates.front().pred;
    SCORPION_ASSIGN_OR_RETURN(BoundPredicate bound, best.Bind(table));
    scorer.ConfigureBound(&bound);
    response.what_if.reserve(result.results.size());
    for (int i = 0; i < static_cast<int>(result.results.size()); ++i) {
      const AggregateResult& r = result.results[i];
      SCORPION_ASSIGN_OR_RETURN(Selection matched,
                                bound.Filter(r.input_group));
      WhatIfEntry entry;
      entry.key = r.key_string;
      entry.original = r.value;
      entry.updated = scorer.UpdatedValue(i, matched);
      entry.tuples_removed = matched.size();
      entry.is_outlier =
          std::find(problem.outliers.begin(), problem.outliers.end(), i) !=
          problem.outliers.end();
      entry.is_holdout =
          std::find(problem.holdouts.begin(), problem.holdouts.end(), i) !=
          problem.holdouts.end();
      response.what_if.push_back(std::move(entry));
    }
  }
  return response;
}

}  // namespace

// --- Engine ------------------------------------------------------------------

Engine::Engine(EngineOptions options) : options_(std::move(options)) {
  int scoring_threads = options_.engine.num_threads;
  if (scoring_threads == 0) scoring_threads = ThreadPool::DefaultNumThreads();
  if (scoring_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(scoring_threads);
  }
}

Engine::~Engine() = default;

Result<Dataset> Engine::Open(const Table& table, GroupByQuery query) {
  SCORPION_ASSIGN_OR_RETURN(QueryResult result,
                            ExecuteGroupBy(table, query));
  return Dataset(this, &table,
                 std::make_shared<QueryResult>(std::move(result)));
}

Result<LiveDataset> Engine::OpenLive(LiveTable& live, GroupByQuery query,
                                     ServiceStats* service_stats) {
  SCORPION_ASSIGN_OR_RETURN(std::shared_ptr<const TableSnapshot> snap,
                            live.Publish());
  SCORPION_ASSIGN_OR_RETURN(QueryResult result,
                            ExecuteGroupBy(snap->table, query));
  if (service_stats != nullptr) {
    ++service_stats->snapshot_generations_published;
  }
  return LiveDataset(
      this, &live, service_stats, std::move(snap),
      std::make_shared<const QueryResult>(std::move(result)));
}

bool Engine::Cancel(uint64_t id) {
  MutexLock lock(service_mu_);
  if (service_ == nullptr) return false;
  return service_->Cancel(id);
}

ServiceStatsSnapshot Engine::service_stats() const {
  MutexLock lock(service_mu_);
  if (service_ == nullptr) return ServiceStatsSnapshot{};
  return service_->stats();
}

ExplanationService& Engine::service() {
  MutexLock lock(service_mu_);
  if (service_ == nullptr) {
    ServiceOptions service_options;
    service_options.engine = options_.engine;
    service_options.num_workers = options_.num_workers;
    service_options.max_queue_depth = options_.max_queue_depth;
    service_options.cache_enabled = options_.cache_enabled;
    service_options.cross_c_warm_start = options_.cross_c_warm_start;
    service_ = std::make_unique<ExplanationService>(service_options);
  }
  return *service_;
}

// --- Dataset -----------------------------------------------------------------

/// Keyed session store: one internally synchronized ExplainSession per
/// annotation set, LRU-bounded so a client cycling through annotation sets
/// cannot grow a dataset without bound. Shared between Dataset and
/// LiveDataset (a live dataset's sessions must survive Refresh — they
/// carry the delta seeds).
struct Dataset::SessionStore {
  struct Entry {
    std::shared_ptr<ExplainSession> session;
    uint64_t last_used = 0;
  };

  static constexpr size_t kMaxSessions = 8;

  Mutex mu;
  uint64_t clock SCORPION_GUARDED_BY(mu) = 0;
  std::map<std::string, Entry> sessions SCORPION_GUARDED_BY(mu);

  /// The session for one annotation set (created on first use, LRU
  /// eviction past kMaxSessions). Returns nullptr when caching is off or
  /// the algorithm ignores sessions.
  static std::shared_ptr<ExplainSession> Acquire(SessionStore& store,
                                                 bool cache_enabled,
                                                 const ProblemSpec& problem,
                                                 Algorithm algorithm);
};

std::shared_ptr<ExplainSession> Dataset::SessionStore::Acquire(
    SessionStore& store, bool cache_enabled, const ProblemSpec& problem,
    Algorithm algorithm) {
  if (!cache_enabled) return nullptr;
  // Only DT consults a session (Scorpion::Run's other branches ignore it);
  // storing entries for NAIVE/MC would let useless keys evict live DT ones.
  if (algorithm != Algorithm::kDT) return nullptr;
  const std::string key = AnnotationKey(problem, algorithm);
  MutexLock lock(store.mu);
  SessionStore::Entry& entry = store.sessions[key];
  if (entry.session == nullptr) {
    entry.session = std::make_shared<ExplainSession>();
    if (store.sessions.size() > SessionStore::kMaxSessions) {
      // Evict the least-recently-used *other* key (map nodes are stable, so
      // `entry` survives); in-flight jobs keep an evicted session alive
      // through their shared_ptr.
      auto victim = store.sessions.end();
      for (auto it = store.sessions.begin(); it != store.sessions.end();
           ++it) {
        if (it->first == key) continue;
        if (victim == store.sessions.end() ||
            it->second.last_used < victim->second.last_used) {
          victim = it;
        }
      }
      if (victim != store.sessions.end()) {
        store.sessions.erase(victim);
      }
    }
  }
  entry.last_used = ++store.clock;
  return entry.session;
}

Dataset::Dataset(Engine* engine, const Table* table,
                 std::shared_ptr<QueryResult> result)
    : engine_(engine),
      table_(table),
      result_(std::move(result)),
      sessions_(std::make_unique<SessionStore>()) {}

Dataset::Dataset(Dataset&&) noexcept = default;
Dataset& Dataset::operator=(Dataset&&) noexcept = default;
Dataset::~Dataset() = default;

Result<ProblemSpec> Dataset::Resolve(const ExplainRequest& request) const {
  return request.Resolve(*result_);
}

void Dataset::ClearCache() {
  MutexLock lock(sessions_->mu);
  for (auto& [key, entry] : sessions_->sessions) entry.session->Clear();
}

std::shared_ptr<ExplainSession> Dataset::SessionFor(
    const ProblemSpec& problem, Algorithm algorithm) const {
  return SessionStore::Acquire(*sessions_, engine_->options().cache_enabled,
                               problem, algorithm);
}

Result<ExplainResponse> Dataset::Explain(const ExplainRequest& request) const {
  SCORPION_ASSIGN_OR_RETURN(ProblemSpec problem, Resolve(request));

  ScorpionOptions engine_options = engine_->options().engine;
  engine_options.algorithm = request.algorithm();
  if (request.top_k() > 0) engine_options.top_k = request.top_k();
  Scorpion engine(engine_options);
  engine.set_thread_pool(engine_->scoring_pool());

  std::shared_ptr<ExplainSession> session =
      SessionFor(problem, request.algorithm());
  Result<Explanation> explanation =
      session != nullptr
          ? engine.ExplainShared(*table_, *result_, problem, session.get(),
                                 engine_->options().cross_c_warm_start)
          : engine.Explain(*table_, *result_, problem);
  if (!explanation.ok()) return explanation.status();
  return BuildResponse(*table_, *result_, problem, request.what_if(),
                       engine_options.enable_block_pruning,
                       engine_->scoring_pool(), std::move(*explanation));
}

Result<PendingExplanation> Dataset::ExplainAsync(
    const ExplainRequest& request) const {
  SCORPION_ASSIGN_OR_RETURN(ProblemSpec problem, Resolve(request));

  Job job;
  job.table = table_;
  job.query_result = result_.get();
  job.query_result_owner = result_;  // outlives dropped handles + Dataset
  job.problem = problem;
  job.algorithm = request.algorithm();
  job.top_k = request.top_k();
  job.priority = request.priority();
  if (request.deadline_seconds().has_value()) {
    SCORPION_RETURN_NOT_OK(
        job.set_deadline_after(*request.deadline_seconds()));
  }
  job.session = SessionFor(problem, request.algorithm());

  Response response = engine_->service().Submit(std::move(job));
  return PendingExplanation(
      table_, result_, std::move(problem), request.what_if(),
      engine_->options().engine.enable_block_pruning,
      engine_->scoring_pool(), std::move(response));
}

// --- LiveDataset -------------------------------------------------------------

/// The pinned (snapshot, result) pair. The lock covers only pointer
/// copies/swaps — a reader pins both under the shared lock and runs its
/// whole explain unlocked against the refcounted copies, so Refresh never
/// waits on an in-flight run (and vice versa). refresh_mu serializes
/// concurrent Refresh callers so generations advance one at a time.
struct LiveDataset::State {
  mutable SharedMutex mu;
  std::shared_ptr<const TableSnapshot> snap SCORPION_GUARDED_BY(mu);
  std::shared_ptr<const QueryResult> result SCORPION_GUARDED_BY(mu);
  Mutex refresh_mu;
};

LiveDataset::LiveDataset(Engine* engine, LiveTable* live,
                         ServiceStats* service_stats,
                         std::shared_ptr<const TableSnapshot> snap,
                         std::shared_ptr<const QueryResult> result)
    : engine_(engine),
      live_(live),
      service_stats_(service_stats),
      state_(std::make_unique<State>()),
      sessions_(std::make_unique<Dataset::SessionStore>()) {
  state_->snap = std::move(snap);
  state_->result = std::move(result);
}

LiveDataset::LiveDataset(LiveDataset&&) noexcept = default;
LiveDataset& LiveDataset::operator=(LiveDataset&&) noexcept = default;
LiveDataset::~LiveDataset() = default;

uint64_t LiveDataset::generation() const {
  ReaderMutexLock lock(state_->mu);
  return state_->snap->generation;
}

std::shared_ptr<const TableSnapshot> LiveDataset::snapshot() const {
  ReaderMutexLock lock(state_->mu);
  return state_->snap;
}

std::shared_ptr<const QueryResult> LiveDataset::result() const {
  ReaderMutexLock lock(state_->mu);
  return state_->result;
}

void LiveDataset::ClearCache() {
  MutexLock lock(sessions_->mu);
  for (auto& [key, entry] : sessions_->sessions) entry.session->Clear();
}

Result<uint64_t> LiveDataset::Refresh() {
  SCORPION_FAILPOINT("storage.live_refresh");
  MutexLock refresh_lock(state_->refresh_mu);
  SCORPION_ASSIGN_OR_RETURN(std::shared_ptr<const TableSnapshot> snap,
                            live_->Publish());
  std::shared_ptr<const TableSnapshot> old_snap;
  std::shared_ptr<const QueryResult> old_result;
  {
    ReaderMutexLock lock(state_->mu);
    old_snap = state_->snap;
    old_result = state_->result;
  }
  if (snap->generation == old_snap->generation) return snap->generation;

  // Extend the query result over only the delta rows (the frozen prefix is
  // encoding-identical between generations, so old groups keep their row
  // lists and untouched aggregates verbatim).
  SCORPION_ASSIGN_OR_RETURN(QueryResult extended,
                            ExtendQueryResult(*old_result, snap->table));
  auto new_result = std::make_shared<const QueryResult>(std::move(extended));

  // Re-key every session before the swap: from this point an in-flight run
  // on the old generation can no longer store into (or read from) these
  // sessions, and the parked seeds let the next run per annotation set
  // extend its match caches instead of refiltering from row zero.
  {
    MutexLock lock(sessions_->mu);
    for (auto& [key, entry] : sessions_->sessions) {
      entry.session->BeginDeltaRefresh(snap->generation,
                                       snap->table.num_rows(), *old_result);
    }
  }
  {
    WriterMutexLock lock(state_->mu);
    state_->snap = snap;
    state_->result = std::move(new_result);
  }
  if (service_stats_ != nullptr) {
    ++service_stats_->snapshot_generations_published;
  }
  return snap->generation;
}

Result<ExplainResponse> LiveDataset::Explain(
    const ExplainRequest& request) const {
  std::shared_ptr<const TableSnapshot> snap;
  std::shared_ptr<const QueryResult> result;
  {
    ReaderMutexLock lock(state_->mu);
    snap = state_->snap;
    result = state_->result;
  }
  SCORPION_ASSIGN_OR_RETURN(ProblemSpec problem, request.Resolve(*result));

  ScorpionOptions engine_options = engine_->options().engine;
  engine_options.algorithm = request.algorithm();
  if (request.top_k() > 0) engine_options.top_k = request.top_k();
  Scorpion engine(engine_options);
  engine.set_thread_pool(engine_->scoring_pool());

  std::shared_ptr<ExplainSession> session = Dataset::SessionStore::Acquire(
      *sessions_, engine_->options().cache_enabled, problem,
      request.algorithm());
  Result<Explanation> explanation =
      session != nullptr
          ? engine.ExplainShared(snap->table, *result, problem, session.get(),
                                 engine_->options().cross_c_warm_start)
          : engine.Explain(snap->table, *result, problem);
  if (!explanation.ok()) return explanation.status();
  if (service_stats_ != nullptr) {
    if (explanation->session_delta_refreshed) {
      ++service_stats_->sessions_delta_refreshed;
    }
    service_stats_->tail_rows_scanned +=
        explanation->scorer_stats.tail_rows_scanned.load();
  }
  return BuildResponse(snap->table, *result, problem, request.what_if(),
                       engine_options.enable_block_pruning,
                       engine_->scoring_pool(), std::move(*explanation));
}

Result<PendingExplanation> LiveDataset::ExplainAsync(
    const ExplainRequest& request) const {
  std::shared_ptr<const TableSnapshot> snap;
  std::shared_ptr<const QueryResult> result;
  {
    ReaderMutexLock lock(state_->mu);
    snap = state_->snap;
    result = state_->result;
  }
  SCORPION_ASSIGN_OR_RETURN(ProblemSpec problem, request.Resolve(*result));

  Job job;
  job.table = &snap->table;
  job.query_result = result.get();
  job.query_result_owner = result;
  job.snapshot = snap;  // keeps the generation alive until the future is set
  job.problem = problem;
  job.algorithm = request.algorithm();
  job.top_k = request.top_k();
  job.priority = request.priority();
  if (request.deadline_seconds().has_value()) {
    SCORPION_RETURN_NOT_OK(
        job.set_deadline_after(*request.deadline_seconds()));
  }
  job.session = Dataset::SessionStore::Acquire(
      *sessions_, engine_->options().cache_enabled, problem,
      request.algorithm());

  Response response = engine_->service().Submit(std::move(job));
  // Take the table pointer before std::move(snap): the arguments below are
  // unsequenced, so the moved-from snap must not be dereferenced in one.
  const Table* table = &snap->table;
  return PendingExplanation(
      table, std::move(result), std::move(problem), request.what_if(),
      engine_->options().engine.enable_block_pruning,
      engine_->scoring_pool(), std::move(response), std::move(snap));
}

// --- PendingExplanation ------------------------------------------------------

PendingExplanation::PendingExplanation(
    const Table* table, std::shared_ptr<const QueryResult> result,
    ProblemSpec problem, bool with_what_if, bool enable_block_pruning,
    ThreadPool* pool, Response response,
    std::shared_ptr<const TableSnapshot> snapshot)
    : table_(table),
      result_(std::move(result)),
      snapshot_(std::move(snapshot)),
      problem_(std::move(problem)),
      with_what_if_(with_what_if),
      enable_block_pruning_(enable_block_pruning),
      pool_(pool),
      response_(std::move(response)) {}

Result<ExplainResponse> PendingExplanation::Get() {
  if (!response_.future.valid()) {
    return Status::InvalidArgument(
        "PendingExplanation::Get() may only be called once");
  }
  Result<Explanation> explanation = response_.future.get();
  if (!explanation.ok()) return explanation.status();
  return BuildResponse(*table_, *result_, problem_, with_what_if_,
                       enable_block_pruning_, pool_,
                       std::move(*explanation));
}

}  // namespace scorpion
