#include "api/explain_response.h"

#include <cstdio>
#include <sstream>

#include "common/macros.h"

namespace scorpion {

const RankedPredicate& ExplainResponse::best() const {
  SCORPION_CHECK(!predicates.empty(),
                 "ExplainResponse::best() called on an empty response");
  return predicates.front();
}

std::string ExplainResponse::ToString() const {
  // Only fixed-width numeric fields go through the bounded snprintf buffer;
  // display strings and keys are unbounded and appended as std::strings so
  // a long predicate can never truncate (and eat the newline of) its line.
  std::ostringstream os;
  char num[128];
  std::snprintf(num, sizeof(num), "%.1f", stats.runtime_seconds * 1e3);
  os << "explanation (" << AlgorithmToString(algorithm) << ", " << num
     << " ms" << (stats.cache_partitions_hit ? ", cached partitions" : "")
     << (stats.cache_result_hit ? ", cached result" : "") << ")\n";
  for (size_t i = 0; i < predicates.size(); ++i) {
    std::snprintf(num, sizeof(num), "%10.4g", predicates[i].influence);
    os << "  #" << (i + 1) << " influence=" << num << "  "
       << predicates[i].display << "\n";
  }
  if (!what_if.empty()) {
    os << "what if " << best().display << " were deleted:\n";
    for (const WhatIfEntry& entry : what_if) {
      os << "  " << entry.key;
      for (size_t pad = entry.key.size(); pad < 12; ++pad) os << ' ';
      std::snprintf(num, sizeof(num), " %10.2f -> %10.2f  (%llu tuples removed)",
                    entry.original, entry.updated,
                    static_cast<unsigned long long>(entry.tuples_removed));
      os << num
         << (entry.is_outlier ? "  <- outlier"
                              : (entry.is_holdout ? "  <- hold-out" : ""))
         << "\n";
    }
  }
  return os.str();
}

}  // namespace scorpion
