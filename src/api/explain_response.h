// ExplainResponse: the serializable result of one explanation job — ranked
// predicates, the built-in per-result "what if" view for the winning
// predicate (the Figure 2 click-through every caller used to hand-roll from
// Scorer internals), and cache/scorer statistics. Like ExplainRequest it is
// a plain value with a JSON wire format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/options.h"
#include "predicate/predicate.h"

namespace scorpion {

/// One ranked explanation predicate. `display` is the human-readable form
/// with dictionary codes resolved against the dataset's table — carried on
/// the response so a remote consumer needs no table access to render it.
struct RankedPredicate {
  Predicate pred;
  double influence = 0.0;
  std::string display;

  bool operator==(const RankedPredicate& other) const = default;
};

/// "What if" view of one result group under the winning predicate: the
/// aggregate value before and after deleting the matched tuples.
struct WhatIfEntry {
  std::string key;             // result group key, e.g. "12PM"
  double original = 0.0;       // agg(g)
  double updated = 0.0;        // agg(g minus matched tuples)
  uint64_t tuples_removed = 0; // |p(g)|
  bool is_outlier = false;
  bool is_holdout = false;

  bool operator==(const WhatIfEntry& other) const = default;
};

/// Best-so-far trace point of a NAIVE run (Figure 11 convergence data).
struct CheckpointEntry {
  double elapsed_seconds = 0.0;
  double influence = 0.0;
  Predicate pred;

  bool operator==(const CheckpointEntry& other) const = default;
};

/// Engine-side statistics for one run: wall clock, session-cache outcomes,
/// and scorer/data-plane traffic.
struct ResponseStats {
  double runtime_seconds = 0.0;
  /// The run reused cached DT partitions / a whole cached merged result.
  bool cache_partitions_hit = false;
  bool cache_result_hit = false;
  uint64_t predicate_scores = 0;
  uint64_t group_deltas = 0;
  uint64_t tuple_scores = 0;
  uint64_t rows_filtered = 0;
  uint64_t match_cache_hits = 0;

  bool operator==(const ResponseStats& other) const = default;
};

/// \brief Result of one Dataset::Explain / ExplainAsync call.
struct ExplainResponse {
  Algorithm algorithm = Algorithm::kDT;
  /// Ranked predicates, most influential first (at most the request's or
  /// engine's top_k).
  std::vector<RankedPredicate> predicates;
  /// Per result group, the effect of deleting best()'s matched tuples;
  /// aligned with (and keyed like) the dataset's QueryResult::results.
  /// Empty when the run produced no predicates.
  std::vector<WhatIfEntry> what_if;
  /// NAIVE convergence trace (empty for DT/MC); `naive_exhausted` is true
  /// when NAIVE swept its whole space within the time budget.
  std::vector<CheckpointEntry> checkpoints;
  bool naive_exhausted = false;
  ResponseStats stats;

  /// The winning predicate; SCORPION_CHECK-fails on an empty response
  /// (Dataset::Explain never returns one — it reports Status instead).
  const RankedPredicate& best() const;

  /// Pretty console rendering: ranked predicates then the what-if table.
  std::string ToString() const;

  /// JSON wire format; FromJson(ToJson(r)) == r bit-identically.
  std::string ToJson() const;
  static Result<ExplainResponse> FromJson(const std::string& json);

  bool operator==(const ExplainResponse& other) const = default;
};

}  // namespace scorpion
