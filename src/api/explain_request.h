// ExplainRequest: the one typed, serializable description of an explanation
// job on the public API surface. Annotations are **key-based** — analysts
// flag result groups by their key string ("12PM"), the way the paper's
// Figure 2 UI works — and are resolved to QueryResult indices exactly once,
// when the request is bound to a Dataset's query result. This replaces the
// raw-index ProblemSpec assembly (FindResult().ValueOrDie() per key) and the
// service Request's dual-c footgun on the old surface.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/options.h"
#include "core/problem.h"
#include "query/groupby.h"

namespace scorpion {

/// One outlier annotation: a result-group key plus its error direction and
/// weight. `error` > 0 means the result is too high (removal should lower
/// it), < 0 too low; magnitudes other than 1 weight outliers relative to
/// each other (the ProblemSpec error-vector semantics, keyed).
struct OutlierFlag {
  std::string key;
  double error = 1.0;

  bool operator==(const OutlierFlag& other) const = default;
};

/// \brief Fluent, validated builder for one explanation job.
///
///   ExplainRequest request = ExplainRequest()
///       .FlagTooHigh("12PM").FlagTooHigh("1PM").Holdout("11AM")
///       .WithAttributes({"sensorid", "voltage"})
///       .WithLambda(0.8).WithC(0.5);
///   auto response = dataset.Explain(request);
///
/// The builder holds keys, not indices; Resolve() binds them against a
/// concrete QueryResult (Dataset::Explain calls it for you). Requests are
/// plain values: copyable, comparable, and JSON-serializable (ToJson /
/// FromJson round-trip bit-identically), so they can cross a process
/// boundary — the wire format the ROADMAP's multi-process service speaks.
class ExplainRequest {
 public:
  ExplainRequest() = default;

  // --- Annotations -----------------------------------------------------------

  /// Flags the result group with key `key` as "too high" (error +1).
  ExplainRequest& FlagTooHigh(std::string key);
  /// Flags the result group as "too low" (error -1).
  ExplainRequest& FlagTooLow(std::string key);
  /// Flags with an explicit signed error weight (must be finite, non-zero).
  ExplainRequest& Flag(std::string key, double error);
  /// Marks the result group as a hold-out (its value should not move).
  ExplainRequest& Holdout(std::string key);
  /// Convenience: marks every key in `keys` as a hold-out.
  ExplainRequest& Holdouts(const std::vector<std::string>& keys);

  // --- Knobs -----------------------------------------------------------------

  /// Attributes predicates may mention (required; A_rest or a subset).
  ExplainRequest& WithAttributes(std::vector<std::string> attributes);
  ExplainRequest& WithAlgorithm(Algorithm algorithm);
  /// Cardinality exponent (Section 7); must be finite and >= 0.
  ExplainRequest& WithC(double c);
  /// Outlier-vs-holdout weight (Section 3.2); must be finite, in [0, 1].
  ExplainRequest& WithLambda(double lambda);
  ExplainRequest& WithInfluenceMode(InfluenceMode mode);
  /// Ranked predicates to return; 0 keeps the engine default.
  ExplainRequest& WithTopK(size_t top_k);
  /// Whether the response carries the per-result what-if view (default
  /// true). Building it costs one pass over the table, which dominates a
  /// session-cache hit — latency-sensitive repeat callers turn it off.
  ExplainRequest& WithWhatIf(bool enabled);

  // --- Serving metadata (used by Dataset::ExplainAsync) ----------------------

  /// Higher-priority requests are dequeued first.
  ExplainRequest& WithPriority(int priority);
  /// Relative deadline: if the request has not started running this many
  /// seconds after submission it completes with DeadlineExceeded. Must be
  /// finite and >= 0; kept relative so it serializes meaningfully.
  ExplainRequest& WithDeadlineAfter(double seconds);
  /// Removes a previously set deadline.
  ExplainRequest& WithoutDeadline();

  // --- Introspection ---------------------------------------------------------

  const std::vector<OutlierFlag>& outliers() const { return outliers_; }
  const std::vector<std::string>& holdouts() const { return holdouts_; }
  const std::vector<std::string>& attributes() const { return attributes_; }
  Algorithm algorithm() const { return algorithm_; }
  double c() const { return c_; }
  double lambda() const { return lambda_; }
  InfluenceMode influence_mode() const { return influence_mode_; }
  size_t top_k() const { return top_k_; }
  bool what_if() const { return what_if_; }
  int priority() const { return priority_; }
  const std::optional<double>& deadline_seconds() const {
    return deadline_seconds_;
  }

  // --- Validation and binding ------------------------------------------------

  /// Key-level validation (no query result needed): at least one outlier,
  /// no duplicate outlier/hold-out keys, no key flagged as both, finite
  /// non-zero error weights, knob domains, a non-empty attribute list, and
  /// a finite non-negative deadline when one is set.
  Status Validate() const;

  /// Resolves the keyed annotations against a concrete query result —
  /// exactly once per binding — into the engine's ProblemSpec. Unknown keys
  /// report KeyError naming the key. The resolved spec is index-based and
  /// carries this request's c, so nothing downstream can disagree about it.
  Result<ProblemSpec> Resolve(const QueryResult& result) const;

  // --- Wire format -----------------------------------------------------------

  /// Serializes to the JSON wire format. FromJson(ToJson(r)) == r, and
  /// ToJson(FromJson(ToJson(r))) is byte-identical to ToJson(r).
  std::string ToJson() const;
  static Result<ExplainRequest> FromJson(const std::string& json);

  bool operator==(const ExplainRequest& other) const = default;

 private:
  std::vector<OutlierFlag> outliers_;
  std::vector<std::string> holdouts_;
  std::vector<std::string> attributes_;
  Algorithm algorithm_ = Algorithm::kDT;
  double c_ = 1.0;
  double lambda_ = 0.5;
  InfluenceMode influence_mode_ = InfluenceMode::kDelete;
  size_t top_k_ = 0;  // 0 = engine default
  bool what_if_ = true;
  int priority_ = 0;
  std::optional<double> deadline_seconds_;
};

}  // namespace scorpion
