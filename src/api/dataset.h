// The public entry point: Engine::Open(table, query) executes the group-by
// and returns a Dataset handle owning the QueryResult and an ExplainSession.
// All explanation traffic goes through the handle —
//
//   Engine engine;
//   auto dataset = engine.Open(table, query);
//   auto response = dataset->Explain(ExplainRequest()
//       .FlagTooHigh("12PM").Holdout("11AM")
//       .WithAttributes({"sensorid", "voltage"}).WithC(0.5));
//
// — replacing the three Scorpion entry modes (Explain / ExplainShared /
// Prepare+ExplainWithC) on the old surface. Scorpion remains the internal
// engine this facade drives. Sync and async explains share the dataset's
// session, so a c-slider sweep reuses DT partitions and merged results
// (Section 8.3.3) with no Prepare() choreography, and results stay
// byte-identical to a direct engine run unless cross-c warm starts are
// explicitly enabled.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "api/explain_request.h"
#include "api/explain_response.h"
#include "common/macros.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/scorpion.h"
#include "query/groupby.h"
#include "service/service.h"
#include "storage/live_table.h"
#include "table/table.h"

namespace scorpion {

class Dataset;
class LiveDataset;
class PendingExplanation;

/// Engine-wide tuning: the inner Scorpion knobs plus the serving knobs the
/// async path (one ExplanationService per Engine) runs with.
struct EngineOptions {
  /// Inner engine tuning. `engine.algorithm` and `engine.top_k` act as
  /// defaults a request can override; `engine.num_threads` sizes the scoring
  /// pool shared by every dataset (0 = one thread per core, 1 = serial).
  ScorpionOptions engine;
  /// Worker threads executing async requests.
  int num_workers = 2;
  /// Async queue bound; beyond it admission control sheds (Unavailable).
  size_t max_queue_depth = 256;
  /// Master switch for session caching across a dataset's explains.
  bool cache_enabled = true;
  /// Opt-in Section 8.3.3 cross-c warm starts: influence can only improve,
  /// but results then depend on which c values ran first. Off by default so
  /// every response is byte-identical to a direct Scorpion::Explain().
  bool cross_c_warm_start = false;
};

/// \brief Factory for Dataset handles; owns the scoring pool and the async
/// serving stack they share. Must outlive every Dataset it opened.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  SCORPION_DISALLOW_COPY_AND_ASSIGN(Engine);

  /// Executes `query` over `table` and returns the handle for explaining
  /// its results. The table is borrowed and must outlive the Dataset; the
  /// executed QueryResult is owned by the handle.
  Result<Dataset> Open(const Table& table, GroupByQuery query);

  /// Opens a streaming dataset over a LiveTable: publishes its current
  /// contents as a pinned snapshot, executes `query` over that frozen
  /// generation, and returns a handle whose Explain()s read the pinned
  /// generation until Refresh() advances it. The LiveTable is borrowed and
  /// must outlive the LiveDataset. An optional ServiceStats sink receives
  /// the ingest-plane counters (generations published, sessions delta-
  /// refreshed, tail rows scanned) the way CoordinatorOptions wires the
  /// distributed ones.
  Result<LiveDataset> OpenLive(LiveTable& live, GroupByQuery query,
                               ServiceStats* service_stats = nullptr);

  /// Cancels a queued async request by id (see PendingExplanation::id());
  /// false if it already started, finished, or was never queued.
  bool Cancel(uint64_t id);

  /// Serving-side counters of the async path (zeros until the first
  /// ExplainAsync call starts the service).
  ServiceStatsSnapshot service_stats() const;

  const EngineOptions& options() const { return options_; }

 private:
  friend class Dataset;
  friend class LiveDataset;

  /// The shared scoring pool (nullptr = serial).
  ThreadPool* scoring_pool() { return pool_.get(); }

  /// The async service, started on first use so sync-only engines spawn no
  /// worker threads.
  ExplanationService& service();

  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  mutable Mutex service_mu_;
  std::unique_ptr<ExplanationService> service_ SCORPION_GUARDED_BY(service_mu_);
};

/// \brief Handle over one executed query: owns the QueryResult and the
/// ExplainSessions its explains share. Movable; not for concurrent
/// mutation, but Explain()/ExplainAsync() are const and safe to call from
/// many threads (session lookup and the sessions themselves are internally
/// synchronized).
///
/// Sessions are keyed by annotation set: an ExplainSession is only valid
/// for one (problem-sans-c) instance, so requests differing in outliers,
/// hold-outs, lambda, weights, attributes or algorithm get distinct
/// sessions (LRU-bounded), while a c sweep over one annotation set shares
/// its session across the sync and async paths.
class Dataset {
 public:
  Dataset(Dataset&&) noexcept;
  Dataset& operator=(Dataset&&) noexcept;
  ~Dataset();

  const Table& table() const { return *table_; }
  const QueryResult& result() const { return *result_; }

  /// Resolves a request's keyed annotations against this dataset's query
  /// result (the one place keys become indices). Exposed for callers that
  /// need the engine-level ProblemSpec, e.g. for evaluation harnesses.
  Result<ProblemSpec> Resolve(const ExplainRequest& request) const;

  /// Runs the request synchronously. Deterministic by default: the response
  /// is byte-identical to a direct engine run of the resolved problem, and
  /// repeated explains at different c reuse this dataset's session cache.
  Result<ExplainResponse> Explain(const ExplainRequest& request) const;

  /// Submits the request to the engine's async service (priority, deadline
  /// and admission control apply) and returns a pending handle. The dataset
  /// must outlive the handle's resolution.
  Result<PendingExplanation> ExplainAsync(const ExplainRequest& request) const;

  /// Drops this dataset's cached partitions and merged results (every
  /// annotation set's session).
  void ClearCache();

 private:
  friend class Engine;
  // LiveDataset reuses the keyed session store (same annotation-set keying,
  // same LRU bound) rather than duplicating it.
  friend class LiveDataset;

  Dataset(Engine* engine, const Table* table,
          std::shared_ptr<QueryResult> result);

  /// The session for one annotation set (created on first use, LRU-bounded;
  /// see the class comment). Disabled caching returns nullptr.
  std::shared_ptr<ExplainSession> SessionFor(const ProblemSpec& problem,
                                             Algorithm algorithm) const;

  Engine* engine_;
  const Table* table_;
  // shared_ptr keeps the result alive (and its address stable) for
  // in-flight async jobs and PendingExplanations even if the Dataset is
  // moved or destroyed first.
  std::shared_ptr<QueryResult> result_;
  // Keyed session store behind a pointer so the Dataset stays movable (the
  // store holds a mutex).
  struct SessionStore;
  std::unique_ptr<SessionStore> sessions_;
};

/// \brief Handle over one query on a streaming LiveTable.
///
/// The Dataset counterpart for data that grows: explains run against the
/// generation pinned at OpenLive or the last Refresh(), so concurrent
/// appends to the LiveTable never shift results mid-call (no more
/// evaluate-after-append aborts — readers simply keep seeing their frozen
/// generation). Refresh() publishes the appended rows as a new generation,
/// extends the cached QueryResult by scanning only the delta rows, and
/// re-keys every explain session with a delta seed so the next explain per
/// annotation set extends its cached match Selections from the old
/// high-water mark instead of refiltering from row zero.
///
/// Thread-safe: Explain()/ExplainAsync() from any number of threads,
/// concurrently with appends and with one Refresh() at a time (concurrent
/// Refresh calls serialize internally). Every response is bit-identical to
/// a from-scratch Engine::Open + Explain over the pinned generation's
/// frozen table.
class LiveDataset {
 public:
  LiveDataset(LiveDataset&&) noexcept;
  LiveDataset& operator=(LiveDataset&&) noexcept;
  ~LiveDataset();

  /// The generation currently served (see TableSnapshot::generation).
  uint64_t generation() const;

  /// The pinned snapshot / its query result. Handles stay valid after
  /// Refresh() advances the dataset (refcounted).
  std::shared_ptr<const TableSnapshot> snapshot() const;
  std::shared_ptr<const QueryResult> result() const;

  /// Publishes the LiveTable's current contents and advances this dataset
  /// to the new generation: the query result is extended incrementally and
  /// every cached session is delta-refresh re-keyed. In-flight explains
  /// finish against the generation they pinned. Returns the now-served
  /// generation (unchanged if nothing was appended).
  Result<uint64_t> Refresh();

  /// Runs the request against the currently pinned generation. Same
  /// determinism contract as Dataset::Explain.
  Result<ExplainResponse> Explain(const ExplainRequest& request) const;

  /// Async counterpart; the submitted job pins the current snapshot, so
  /// the generation survives until the future is redeemed even if
  /// Refresh() advances the dataset first.
  Result<PendingExplanation> ExplainAsync(const ExplainRequest& request) const;

  /// Drops every annotation set's cached session state (including parked
  /// delta seeds).
  void ClearCache();

 private:
  friend class Engine;

  struct State;

  LiveDataset(Engine* engine, LiveTable* live, ServiceStats* service_stats,
              std::shared_ptr<const TableSnapshot> snap,
              std::shared_ptr<const QueryResult> result);

  Engine* engine_;
  LiveTable* live_;
  /// Optional ingest-plane counter sink (see Engine::OpenLive).
  ServiceStats* service_stats_;
  /// Pinned (snapshot, result) pair behind a pointer for movability; the
  /// State's reader/writer lock covers only the pointer swap, never a run.
  std::unique_ptr<State> state_;
  std::unique_ptr<Dataset::SessionStore> sessions_;
};

/// \brief Handle for one in-flight ExplainAsync request.
///
/// Get() blocks until the engine finishes (or the request is shed, expires,
/// or is cancelled — see the service error contract) and can be called
/// once. The handle shares ownership of the query result, so it stays
/// valid even if the Dataset that issued it is moved or destroyed; only
/// the table (borrowed) and the Engine must outlive it.
class PendingExplanation {
 public:
  PendingExplanation(PendingExplanation&&) = default;
  PendingExplanation& operator=(PendingExplanation&&) = default;

  /// Service-unique id, usable with Engine::Cancel().
  uint64_t id() const { return response_.id; }

  /// True until Get() consumes the result.
  bool valid() const { return response_.future.valid(); }

  Result<ExplainResponse> Get();

 private:
  friend class Dataset;
  friend class LiveDataset;

  PendingExplanation(const Table* table,
                     std::shared_ptr<const QueryResult> result,
                     ProblemSpec problem, bool with_what_if,
                     bool enable_block_pruning, ThreadPool* pool,
                     Response response,
                     std::shared_ptr<const TableSnapshot> snapshot = nullptr);

  const Table* table_;
  std::shared_ptr<const QueryResult> result_;
  // Generation pin when the table lives inside a published TableSnapshot
  // (LiveDataset::ExplainAsync); null for plain datasets.
  std::shared_ptr<const TableSnapshot> snapshot_;
  ProblemSpec problem_;
  bool with_what_if_ = true;
  // Engine data-plane configuration captured at submit time, so the
  // what-if bind in Get() follows ScorpionOptions::enable_block_pruning
  // and the shared scoring pool (the Engine must outlive this handle —
  // already part of the handle's contract).
  bool enable_block_pruning_ = true;
  ThreadPool* pool_ = nullptr;
  Response response_;
};

}  // namespace scorpion
