// The public entry point: Engine::Open(table, query) executes the group-by
// and returns a Dataset handle owning the QueryResult and an ExplainSession.
// All explanation traffic goes through the handle —
//
//   Engine engine;
//   auto dataset = engine.Open(table, query);
//   auto response = dataset->Explain(ExplainRequest()
//       .FlagTooHigh("12PM").Holdout("11AM")
//       .WithAttributes({"sensorid", "voltage"}).WithC(0.5));
//
// — replacing the three Scorpion entry modes (Explain / ExplainShared /
// Prepare+ExplainWithC) on the old surface. Scorpion remains the internal
// engine this facade drives. Sync and async explains share the dataset's
// session, so a c-slider sweep reuses DT partitions and merged results
// (Section 8.3.3) with no Prepare() choreography, and results stay
// byte-identical to a direct engine run unless cross-c warm starts are
// explicitly enabled.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "api/explain_request.h"
#include "api/explain_response.h"
#include "common/macros.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/scorpion.h"
#include "query/groupby.h"
#include "service/service.h"
#include "table/table.h"

namespace scorpion {

class Dataset;
class PendingExplanation;

/// Engine-wide tuning: the inner Scorpion knobs plus the serving knobs the
/// async path (one ExplanationService per Engine) runs with.
struct EngineOptions {
  /// Inner engine tuning. `engine.algorithm` and `engine.top_k` act as
  /// defaults a request can override; `engine.num_threads` sizes the scoring
  /// pool shared by every dataset (0 = one thread per core, 1 = serial).
  ScorpionOptions engine;
  /// Worker threads executing async requests.
  int num_workers = 2;
  /// Async queue bound; beyond it admission control sheds (Unavailable).
  size_t max_queue_depth = 256;
  /// Master switch for session caching across a dataset's explains.
  bool cache_enabled = true;
  /// Opt-in Section 8.3.3 cross-c warm starts: influence can only improve,
  /// but results then depend on which c values ran first. Off by default so
  /// every response is byte-identical to a direct Scorpion::Explain().
  bool cross_c_warm_start = false;
};

/// \brief Factory for Dataset handles; owns the scoring pool and the async
/// serving stack they share. Must outlive every Dataset it opened.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  SCORPION_DISALLOW_COPY_AND_ASSIGN(Engine);

  /// Executes `query` over `table` and returns the handle for explaining
  /// its results. The table is borrowed and must outlive the Dataset; the
  /// executed QueryResult is owned by the handle.
  Result<Dataset> Open(const Table& table, GroupByQuery query);

  /// Cancels a queued async request by id (see PendingExplanation::id());
  /// false if it already started, finished, or was never queued.
  bool Cancel(uint64_t id);

  /// Serving-side counters of the async path (zeros until the first
  /// ExplainAsync call starts the service).
  ServiceStatsSnapshot service_stats() const;

  const EngineOptions& options() const { return options_; }

 private:
  friend class Dataset;

  /// The shared scoring pool (nullptr = serial).
  ThreadPool* scoring_pool() { return pool_.get(); }

  /// The async service, started on first use so sync-only engines spawn no
  /// worker threads.
  ExplanationService& service();

  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  mutable Mutex service_mu_;
  std::unique_ptr<ExplanationService> service_ SCORPION_GUARDED_BY(service_mu_);
};

/// \brief Handle over one executed query: owns the QueryResult and the
/// ExplainSessions its explains share. Movable; not for concurrent
/// mutation, but Explain()/ExplainAsync() are const and safe to call from
/// many threads (session lookup and the sessions themselves are internally
/// synchronized).
///
/// Sessions are keyed by annotation set: an ExplainSession is only valid
/// for one (problem-sans-c) instance, so requests differing in outliers,
/// hold-outs, lambda, weights, attributes or algorithm get distinct
/// sessions (LRU-bounded), while a c sweep over one annotation set shares
/// its session across the sync and async paths.
class Dataset {
 public:
  Dataset(Dataset&&) noexcept;
  Dataset& operator=(Dataset&&) noexcept;
  ~Dataset();

  const Table& table() const { return *table_; }
  const QueryResult& result() const { return *result_; }

  /// Resolves a request's keyed annotations against this dataset's query
  /// result (the one place keys become indices). Exposed for callers that
  /// need the engine-level ProblemSpec, e.g. for evaluation harnesses.
  Result<ProblemSpec> Resolve(const ExplainRequest& request) const;

  /// Runs the request synchronously. Deterministic by default: the response
  /// is byte-identical to a direct engine run of the resolved problem, and
  /// repeated explains at different c reuse this dataset's session cache.
  Result<ExplainResponse> Explain(const ExplainRequest& request) const;

  /// Submits the request to the engine's async service (priority, deadline
  /// and admission control apply) and returns a pending handle. The dataset
  /// must outlive the handle's resolution.
  Result<PendingExplanation> ExplainAsync(const ExplainRequest& request) const;

  /// Drops this dataset's cached partitions and merged results (every
  /// annotation set's session).
  void ClearCache();

 private:
  friend class Engine;

  Dataset(Engine* engine, const Table* table,
          std::shared_ptr<QueryResult> result);

  /// The session for one annotation set (created on first use, LRU-bounded;
  /// see the class comment). Disabled caching returns nullptr.
  std::shared_ptr<ExplainSession> SessionFor(const ProblemSpec& problem,
                                             Algorithm algorithm) const;

  Engine* engine_;
  const Table* table_;
  // shared_ptr keeps the result alive (and its address stable) for
  // in-flight async jobs and PendingExplanations even if the Dataset is
  // moved or destroyed first.
  std::shared_ptr<QueryResult> result_;
  // Keyed session store behind a pointer so the Dataset stays movable (the
  // store holds a mutex).
  struct SessionStore;
  std::unique_ptr<SessionStore> sessions_;
};

/// \brief Handle for one in-flight ExplainAsync request.
///
/// Get() blocks until the engine finishes (or the request is shed, expires,
/// or is cancelled — see the service error contract) and can be called
/// once. The handle shares ownership of the query result, so it stays
/// valid even if the Dataset that issued it is moved or destroyed; only
/// the table (borrowed) and the Engine must outlive it.
class PendingExplanation {
 public:
  PendingExplanation(PendingExplanation&&) = default;
  PendingExplanation& operator=(PendingExplanation&&) = default;

  /// Service-unique id, usable with Engine::Cancel().
  uint64_t id() const { return response_.id; }

  /// True until Get() consumes the result.
  bool valid() const { return response_.future.valid(); }

  Result<ExplainResponse> Get();

 private:
  friend class Dataset;

  PendingExplanation(const Table* table,
                     std::shared_ptr<const QueryResult> result,
                     ProblemSpec problem, bool with_what_if,
                     bool enable_block_pruning, ThreadPool* pool,
                     Response response);

  const Table* table_;
  std::shared_ptr<const QueryResult> result_;
  ProblemSpec problem_;
  bool with_what_if_ = true;
  // Engine data-plane configuration captured at submit time, so the
  // what-if bind in Get() follows ScorpionOptions::enable_block_pruning
  // and the shared scoring pool (the Engine must outlive this handle —
  // already part of the handle's contract).
  bool enable_block_pruning_ = true;
  ThreadPool* pool_ = nullptr;
  Response response_;
};

}  // namespace scorpion
