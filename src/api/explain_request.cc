#include "api/explain_request.h"

#include <cmath>
#include <set>

#include "common/macros.h"

namespace scorpion {

ExplainRequest& ExplainRequest::FlagTooHigh(std::string key) {
  return Flag(std::move(key), +1.0);
}

ExplainRequest& ExplainRequest::FlagTooLow(std::string key) {
  return Flag(std::move(key), -1.0);
}

ExplainRequest& ExplainRequest::Flag(std::string key, double error) {
  outliers_.push_back(OutlierFlag{std::move(key), error});
  return *this;
}

ExplainRequest& ExplainRequest::Holdout(std::string key) {
  holdouts_.push_back(std::move(key));
  return *this;
}

ExplainRequest& ExplainRequest::Holdouts(const std::vector<std::string>& keys) {
  holdouts_.insert(holdouts_.end(), keys.begin(), keys.end());
  return *this;
}

ExplainRequest& ExplainRequest::WithAttributes(
    std::vector<std::string> attributes) {
  attributes_ = std::move(attributes);
  return *this;
}

ExplainRequest& ExplainRequest::WithAlgorithm(Algorithm algorithm) {
  algorithm_ = algorithm;
  return *this;
}

ExplainRequest& ExplainRequest::WithC(double c) {
  c_ = c;
  return *this;
}

ExplainRequest& ExplainRequest::WithLambda(double lambda) {
  lambda_ = lambda;
  return *this;
}

ExplainRequest& ExplainRequest::WithInfluenceMode(InfluenceMode mode) {
  influence_mode_ = mode;
  return *this;
}

ExplainRequest& ExplainRequest::WithTopK(size_t top_k) {
  top_k_ = top_k;
  return *this;
}

ExplainRequest& ExplainRequest::WithWhatIf(bool enabled) {
  what_if_ = enabled;
  return *this;
}

ExplainRequest& ExplainRequest::WithPriority(int priority) {
  priority_ = priority;
  return *this;
}

ExplainRequest& ExplainRequest::WithDeadlineAfter(double seconds) {
  deadline_seconds_ = seconds;
  return *this;
}

ExplainRequest& ExplainRequest::WithoutDeadline() {
  deadline_seconds_.reset();
  return *this;
}

Status ExplainRequest::Validate() const {
  if (outliers_.empty()) {
    return Status::InvalidArgument(
        "at least one outlier flag is required (FlagTooHigh/FlagTooLow)");
  }
  std::set<std::string> outlier_keys;
  for (const OutlierFlag& flag : outliers_) {
    if (!outlier_keys.insert(flag.key).second) {
      return Status::InvalidArgument("result '" + flag.key +
                                     "' is flagged as an outlier twice");
    }
    if (!std::isfinite(flag.error) || flag.error == 0.0) {
      return Status::InvalidArgument("outlier '" + flag.key +
                                     "' needs a finite, non-zero error weight");
    }
  }
  std::set<std::string> holdout_keys;
  for (const std::string& key : holdouts_) {
    if (!holdout_keys.insert(key).second) {
      return Status::InvalidArgument("result '" + key +
                                     "' is marked as a hold-out twice");
    }
    if (outlier_keys.count(key) > 0) {
      return Status::InvalidArgument(
          "result '" + key + "' is flagged as both outlier and hold-out");
    }
  }
  if (!std::isfinite(lambda_) || lambda_ < 0.0 || lambda_ > 1.0) {
    return Status::InvalidArgument("lambda must be finite and in [0, 1]");
  }
  if (!std::isfinite(c_) || c_ < 0.0) {
    return Status::InvalidArgument("c must be finite and non-negative");
  }
  if (attributes_.empty()) {
    return Status::InvalidArgument(
        "at least one explanation attribute is required (WithAttributes)");
  }
  std::set<std::string> attr_set(attributes_.begin(), attributes_.end());
  if (attr_set.size() != attributes_.size()) {
    return Status::InvalidArgument("duplicate explanation attribute");
  }
  if (deadline_seconds_.has_value() &&
      (!std::isfinite(*deadline_seconds_) || *deadline_seconds_ < 0.0)) {
    return Status::InvalidArgument(
        "deadline must be finite and non-negative seconds");
  }
  return Status::OK();
}

Result<ProblemSpec> ExplainRequest::Resolve(const QueryResult& result) const {
  SCORPION_RETURN_NOT_OK(Validate());

  std::vector<std::string> outlier_keys;
  outlier_keys.reserve(outliers_.size());
  for (const OutlierFlag& flag : outliers_) outlier_keys.push_back(flag.key);

  ProblemSpec problem;
  SCORPION_ASSIGN_OR_RETURN(problem.outliers,
                            result.FindResults(outlier_keys));
  SCORPION_ASSIGN_OR_RETURN(problem.holdouts, result.FindResults(holdouts_));
  problem.error_vectors.reserve(outliers_.size());
  for (const OutlierFlag& flag : outliers_) {
    problem.error_vectors.push_back(flag.error);
  }
  problem.lambda = lambda_;
  problem.c = c_;
  problem.attributes = attributes_;
  problem.influence_mode = influence_mode_;
  SCORPION_RETURN_NOT_OK(problem.Validate(result));
  return problem;
}

}  // namespace scorpion
