#include "api/serialization.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "api/explain_request.h"
#include "api/explain_response.h"
#include "common/macros.h"

namespace scorpion {

namespace {

/// Wire schema version stamped on request/response documents; readers
/// reject anything else, so incompatible peers fail loudly.
constexpr int64_t kWireVersion = 1;

/// Influence values can legitimately be ±infinity (a predicate annihilating
/// an AVG group scores -inf); JSON numbers cannot. Encode non-finite scores
/// as sentinel strings and accept either form on the way in.
JsonValue ScoreToJson(double v) {
  if (std::isfinite(v)) return JsonValue::Number(v);
  if (std::isnan(v)) return JsonValue::String("NaN");
  return JsonValue::String(v > 0 ? "Infinity" : "-Infinity");
}

Result<double> ScoreFromJson(const JsonValue& value,
                             const std::string& context) {
  if (value.is_number()) return value.number_value();
  if (value.is_string()) {
    const std::string& s = value.string_value();
    if (s == "Infinity") return std::numeric_limits<double>::infinity();
    if (s == "-Infinity") return -std::numeric_limits<double>::infinity();
    if (s == "NaN") return std::numeric_limits<double>::quiet_NaN();
  }
  return Status::InvalidArgument(context +
                                 ": expected a number or an Infinity/NaN "
                                 "sentinel string");
}

Result<std::vector<std::string>> StringArray(const JsonValue* array,
                                             const std::string& context) {
  std::vector<std::string> out;
  out.reserve(array->items().size());
  for (const JsonValue& item : array->items()) {
    if (!item.is_string()) {
      return Status::InvalidArgument(context + ": expected strings");
    }
    out.push_back(item.string_value());
  }
  return out;
}

Result<std::vector<int>> IntArray(const JsonValue* array,
                                  const std::string& context) {
  std::vector<int> out;
  out.reserve(array->items().size());
  for (const JsonValue& item : array->items()) {
    if (!item.is_number()) {
      return Status::InvalidArgument(context + ": expected integers");
    }
    double d = item.number_value();
    // Range check before the cast — double-to-int of an out-of-range value
    // is undefined behaviour, and this is the wire-facing parser.
    if (d < -2147483648.0 || d > 2147483647.0) {
      return Status::InvalidArgument(context + ": integer out of range");
    }
    int i = static_cast<int>(d);
    if (static_cast<double>(i) != d) {
      return Status::InvalidArgument(context + ": expected integers");
    }
    out.push_back(i);
  }
  return out;
}

Result<std::vector<double>> DoubleArray(const JsonValue* array,
                                        const std::string& context) {
  std::vector<double> out;
  out.reserve(array->items().size());
  for (const JsonValue& item : array->items()) {
    if (!item.is_number()) {
      return Status::InvalidArgument(context + ": expected numbers");
    }
    out.push_back(item.number_value());
  }
  return out;
}

Result<uint64_t> CountFromDouble(double d, const std::string& context) {
  // Counts beyond 2^53 cannot have survived the double-typed wire exactly,
  // and casting an out-of-range double is undefined behaviour.
  if (d < 0.0 || d > 9007199254740992.0 || d != std::floor(d)) {
    return Status::InvalidArgument(context + ": expected a non-negative "
                                             "integer");
  }
  return static_cast<uint64_t>(d);
}

/// Table-data doubles must survive the wire bit-exactly (the content
/// fingerprint hashes bit patterns). Finite values round-trip through the
/// shortest-round-trip number writer; non-finite ones (JSON has no syntax
/// for them) ride as 16-hex-digit bit-pattern strings, NaN payload included.
JsonValue WireDoubleToJson(double v) {
  if (std::isfinite(v)) return JsonValue::Number(v);
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[17];
  static const char* kHex = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[i] = kHex[bits & 0xF];
    bits >>= 4;
  }
  buf[16] = '\0';
  return JsonValue::String(buf);
}

Result<double> WireDoubleFromJson(const JsonValue& value,
                                  const std::string& context) {
  if (value.is_number()) return value.number_value();
  if (value.is_string()) {
    const std::string& s = value.string_value();
    if (s.size() == 16) {
      uint64_t bits = 0;
      for (char c : s) {
        int digit;
        if (c >= '0' && c <= '9') {
          digit = c - '0';
        } else if (c >= 'a' && c <= 'f') {
          digit = c - 'a' + 10;
        } else {
          return Status::InvalidArgument(
              context + ": bad bit-pattern string '" + s + "'");
        }
        bits = (bits << 4) | static_cast<uint64_t>(digit);
      }
      double v;
      std::memcpy(&v, &bits, sizeof(v));
      if (std::isfinite(v)) {
        // Finite values must use the number form — two encodings of one
        // value would break the "ToJson is deterministic" contract.
        return Status::InvalidArgument(
            context + ": finite double encoded as a bit-pattern string");
      }
      return v;
    }
  }
  return Status::InvalidArgument(
      context + ": expected a number or a 16-hex-digit bit-pattern string");
}

const char* DataTypeToWire(DataType type) {
  return type == DataType::kDouble ? "double" : "categorical";
}

Result<DataType> DataTypeFromWire(const std::string& name) {
  if (name == "double") return DataType::kDouble;
  if (name == "categorical") return DataType::kCategorical;
  return Status::InvalidArgument("unknown column type '" + name +
                                 "' (expected double or categorical)");
}

}  // namespace

// --- Enums -------------------------------------------------------------------

Result<Algorithm> AlgorithmFromString(const std::string& name) {
  if (name == "NAIVE") return Algorithm::kNaive;
  if (name == "DT") return Algorithm::kDT;
  if (name == "MC") return Algorithm::kMC;
  return Status::InvalidArgument("unknown algorithm '" + name +
                                 "' (expected NAIVE, DT or MC)");
}

const char* InfluenceModeToString(InfluenceMode mode) {
  switch (mode) {
    case InfluenceMode::kDelete:
      return "delete";
    case InfluenceMode::kMeanShift:
      return "mean_shift";
  }
  return "?";
}

Result<InfluenceMode> InfluenceModeFromString(const std::string& name) {
  if (name == "delete") return InfluenceMode::kDelete;
  if (name == "mean_shift") return InfluenceMode::kMeanShift;
  return Status::InvalidArgument("unknown influence mode '" + name +
                                 "' (expected delete or mean_shift)");
}

// --- Predicate ---------------------------------------------------------------

JsonValue PredicateToJsonValue(const Predicate& pred) {
  JsonValue ranges = JsonValue::Array();
  for (const RangeClause& clause : pred.ranges()) {
    JsonValue r = JsonValue::Object();
    r.Add("attr", JsonValue::String(clause.attr));
    r.Add("lo", JsonValue::Number(clause.lo));
    r.Add("hi", JsonValue::Number(clause.hi));
    r.Add("hi_inclusive", JsonValue::Bool(clause.hi_inclusive));
    ranges.Append(std::move(r));
  }
  JsonValue sets = JsonValue::Array();
  for (const SetClause& clause : pred.sets()) {
    JsonValue s = JsonValue::Object();
    s.Add("attr", JsonValue::String(clause.attr));
    JsonValue codes = JsonValue::Array();
    for (int32_t code : clause.codes) {
      codes.Append(JsonValue::Number(static_cast<double>(code)));
    }
    s.Add("codes", std::move(codes));
    sets.Append(std::move(s));
  }
  JsonValue out = JsonValue::Object();
  out.Add("ranges", std::move(ranges));
  out.Add("sets", std::move(sets));
  return out;
}

Result<Predicate> PredicateFromJsonValue(const JsonValue& value) {
  SCORPION_ASSIGN_OR_RETURN(JsonObjectReader reader,
                            JsonObjectReader::Make(value, "predicate"));
  Predicate pred;
  SCORPION_ASSIGN_OR_RETURN(const JsonValue* ranges,
                            reader.GetArray("ranges"));
  for (const JsonValue& item : ranges->items()) {
    SCORPION_ASSIGN_OR_RETURN(
        JsonObjectReader clause_reader,
        JsonObjectReader::Make(item, "predicate range clause"));
    RangeClause clause;
    SCORPION_ASSIGN_OR_RETURN(clause.attr, clause_reader.GetString("attr"));
    SCORPION_ASSIGN_OR_RETURN(clause.lo, clause_reader.GetDouble("lo"));
    SCORPION_ASSIGN_OR_RETURN(clause.hi, clause_reader.GetDouble("hi"));
    SCORPION_ASSIGN_OR_RETURN(clause.hi_inclusive,
                              clause_reader.GetBool("hi_inclusive"));
    SCORPION_RETURN_NOT_OK(clause_reader.Finish());
    SCORPION_RETURN_NOT_OK(pred.AddRange(clause));
  }
  SCORPION_ASSIGN_OR_RETURN(const JsonValue* sets, reader.GetArray("sets"));
  for (const JsonValue& item : sets->items()) {
    SCORPION_ASSIGN_OR_RETURN(
        JsonObjectReader clause_reader,
        JsonObjectReader::Make(item, "predicate set clause"));
    SetClause clause;
    SCORPION_ASSIGN_OR_RETURN(clause.attr, clause_reader.GetString("attr"));
    SCORPION_ASSIGN_OR_RETURN(const JsonValue* codes,
                              clause_reader.GetArray("codes"));
    SCORPION_ASSIGN_OR_RETURN(std::vector<int> code_ints,
                              IntArray(codes, "predicate set codes"));
    clause.codes.assign(code_ints.begin(), code_ints.end());
    SCORPION_RETURN_NOT_OK(clause_reader.Finish());
    SCORPION_RETURN_NOT_OK(pred.AddSet(std::move(clause)));
  }
  SCORPION_RETURN_NOT_OK(reader.Finish());
  return pred;
}

std::string PredicateToJson(const Predicate& pred) {
  return PredicateToJsonValue(pred).Dump();
}

Result<Predicate> PredicateFromJson(const std::string& json) {
  SCORPION_ASSIGN_OR_RETURN(JsonValue value, JsonValue::Parse(json));
  return PredicateFromJsonValue(value);
}

// --- ProblemSpec -------------------------------------------------------------

JsonValue ProblemSpecToJsonValue(const ProblemSpec& problem) {
  JsonValue out = JsonValue::Object();
  JsonValue outliers = JsonValue::Array();
  for (int idx : problem.outliers) {
    outliers.Append(JsonValue::Number(static_cast<double>(idx)));
  }
  out.Add("outliers", std::move(outliers));
  JsonValue holdouts = JsonValue::Array();
  for (int idx : problem.holdouts) {
    holdouts.Append(JsonValue::Number(static_cast<double>(idx)));
  }
  out.Add("holdouts", std::move(holdouts));
  JsonValue errors = JsonValue::Array();
  for (double v : problem.error_vectors) errors.Append(JsonValue::Number(v));
  out.Add("error_vectors", std::move(errors));
  out.Add("lambda", JsonValue::Number(problem.lambda));
  out.Add("c", JsonValue::Number(problem.c));
  JsonValue attrs = JsonValue::Array();
  for (const std::string& attr : problem.attributes) {
    attrs.Append(JsonValue::String(attr));
  }
  out.Add("attributes", std::move(attrs));
  out.Add("influence_mode",
          JsonValue::String(InfluenceModeToString(problem.influence_mode)));
  return out;
}

Result<ProblemSpec> ProblemSpecFromJsonValue(const JsonValue& value) {
  SCORPION_ASSIGN_OR_RETURN(JsonObjectReader reader,
                            JsonObjectReader::Make(value, "problem_spec"));
  ProblemSpec problem;
  SCORPION_ASSIGN_OR_RETURN(const JsonValue* outliers,
                            reader.GetArray("outliers"));
  SCORPION_ASSIGN_OR_RETURN(problem.outliers,
                            IntArray(outliers, "problem_spec outliers"));
  SCORPION_ASSIGN_OR_RETURN(const JsonValue* holdouts,
                            reader.GetArray("holdouts"));
  SCORPION_ASSIGN_OR_RETURN(problem.holdouts,
                            IntArray(holdouts, "problem_spec holdouts"));
  SCORPION_ASSIGN_OR_RETURN(const JsonValue* errors,
                            reader.GetArray("error_vectors"));
  SCORPION_ASSIGN_OR_RETURN(
      problem.error_vectors,
      DoubleArray(errors, "problem_spec error_vectors"));
  SCORPION_ASSIGN_OR_RETURN(problem.lambda, reader.GetDouble("lambda"));
  SCORPION_ASSIGN_OR_RETURN(problem.c, reader.GetDouble("c"));
  SCORPION_ASSIGN_OR_RETURN(const JsonValue* attrs,
                            reader.GetArray("attributes"));
  SCORPION_ASSIGN_OR_RETURN(problem.attributes,
                            StringArray(attrs, "problem_spec attributes"));
  SCORPION_ASSIGN_OR_RETURN(std::string mode,
                            reader.GetString("influence_mode"));
  SCORPION_ASSIGN_OR_RETURN(problem.influence_mode,
                            InfluenceModeFromString(mode));
  SCORPION_RETURN_NOT_OK(reader.Finish());
  return problem;
}

std::string ProblemSpecToJson(const ProblemSpec& problem) {
  return ProblemSpecToJsonValue(problem).Dump();
}

Result<ProblemSpec> ProblemSpecFromJson(const std::string& json) {
  SCORPION_ASSIGN_OR_RETURN(JsonValue value, JsonValue::Parse(json));
  return ProblemSpecFromJsonValue(value);
}

// --- Table -------------------------------------------------------------------

JsonValue TableToJsonValue(const Table& table) {
  JsonValue out = JsonValue::Object();
  JsonValue schema = JsonValue::Array();
  for (const Field& field : table.schema().fields()) {
    JsonValue f = JsonValue::Object();
    f.Add("name", JsonValue::String(field.name));
    f.Add("type", JsonValue::String(DataTypeToWire(field.type)));
    schema.Append(std::move(f));
  }
  out.Add("schema", std::move(schema));
  out.Add("num_rows",
          JsonValue::Number(static_cast<double>(table.num_rows())));
  JsonValue columns = JsonValue::Array();
  for (int c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    JsonValue j = JsonValue::Object();
    if (col.type() == DataType::kDouble) {
      JsonValue values = JsonValue::Array();
      for (double v : col.doubles()) values.Append(WireDoubleToJson(v));
      j.Add("values", std::move(values));
    } else {
      JsonValue dictionary = JsonValue::Array();
      for (const std::string& s : col.dictionary()) {
        dictionary.Append(JsonValue::String(s));
      }
      j.Add("dictionary", std::move(dictionary));
      JsonValue codes = JsonValue::Array();
      for (int32_t code : col.codes()) {
        codes.Append(JsonValue::Number(static_cast<double>(code)));
      }
      j.Add("codes", std::move(codes));
    }
    columns.Append(std::move(j));
  }
  out.Add("columns", std::move(columns));
  return out;
}

Result<Table> TableFromJsonValue(const JsonValue& value) {
  SCORPION_ASSIGN_OR_RETURN(JsonObjectReader reader,
                            JsonObjectReader::Make(value, "table"));
  SCORPION_ASSIGN_OR_RETURN(const JsonValue* schema_json,
                            reader.GetArray("schema"));
  std::vector<Field> fields;
  for (const JsonValue& item : schema_json->items()) {
    SCORPION_ASSIGN_OR_RETURN(JsonObjectReader field_reader,
                              JsonObjectReader::Make(item, "table field"));
    Field field;
    SCORPION_ASSIGN_OR_RETURN(field.name, field_reader.GetString("name"));
    SCORPION_ASSIGN_OR_RETURN(std::string type,
                              field_reader.GetString("type"));
    SCORPION_ASSIGN_OR_RETURN(field.type, DataTypeFromWire(type));
    SCORPION_RETURN_NOT_OK(field_reader.Finish());
    fields.push_back(std::move(field));
  }
  SCORPION_ASSIGN_OR_RETURN(double rows_raw, reader.GetDouble("num_rows"));
  SCORPION_ASSIGN_OR_RETURN(uint64_t num_rows,
                            CountFromDouble(rows_raw, "table num_rows"));

  Table table{Schema(fields)};
  SCORPION_ASSIGN_OR_RETURN(const JsonValue* columns,
                            reader.GetArray("columns"));
  if (columns->items().size() != fields.size()) {
    return Status::InvalidArgument(
        "table: " + std::to_string(columns->items().size()) +
        " columns for " + std::to_string(fields.size()) + " schema fields");
  }
  for (size_t c = 0; c < fields.size(); ++c) {
    const JsonValue& item = columns->items()[c];
    SCORPION_ASSIGN_OR_RETURN(
        JsonObjectReader col_reader,
        JsonObjectReader::Make(item, "table column '" + fields[c].name + "'"));
    if (fields[c].type == DataType::kDouble) {
      SCORPION_ASSIGN_OR_RETURN(const JsonValue* values,
                                col_reader.GetArray("values"));
      std::vector<double> data;
      data.reserve(values->items().size());
      for (const JsonValue& v : values->items()) {
        SCORPION_ASSIGN_OR_RETURN(
            double d,
            WireDoubleFromJson(v, "table column '" + fields[c].name + "'"));
        data.push_back(d);
      }
      SCORPION_RETURN_NOT_OK(
          table.column(static_cast<int>(c)).SetDoubleData(std::move(data)));
    } else {
      SCORPION_ASSIGN_OR_RETURN(const JsonValue* dictionary,
                                col_reader.GetArray("dictionary"));
      SCORPION_ASSIGN_OR_RETURN(
          std::vector<std::string> dict,
          StringArray(dictionary, "table column dictionary"));
      SCORPION_ASSIGN_OR_RETURN(const JsonValue* codes,
                                col_reader.GetArray("codes"));
      SCORPION_ASSIGN_OR_RETURN(std::vector<int> code_ints,
                                IntArray(codes, "table column codes"));
      std::vector<int32_t> code_data(code_ints.begin(), code_ints.end());
      SCORPION_RETURN_NOT_OK(
          table.column(static_cast<int>(c))
              .SetCategoricalData(std::move(code_data), std::move(dict)));
    }
    SCORPION_RETURN_NOT_OK(col_reader.Finish());
  }
  SCORPION_RETURN_NOT_OK(reader.Finish());
  SCORPION_RETURN_NOT_OK(table.FinalizeColumnwiseBuild());
  if (table.num_rows() != num_rows) {
    return Status::InvalidArgument(
        "table: declared " + std::to_string(num_rows) + " rows but columns " +
        "carry " + std::to_string(table.num_rows()));
  }
  return table;
}

std::string TableToJson(const Table& table) {
  return TableToJsonValue(table).Dump();
}

Result<Table> TableFromJson(const std::string& json) {
  SCORPION_ASSIGN_OR_RETURN(JsonValue value, JsonValue::Parse(json));
  return TableFromJsonValue(value);
}

// --- GroupByQuery ------------------------------------------------------------

JsonValue GroupByQueryToJsonValue(const GroupByQuery& query) {
  JsonValue out = JsonValue::Object();
  out.Add("aggregate", JsonValue::String(query.aggregate));
  out.Add("agg_attr", JsonValue::String(query.agg_attr));
  JsonValue group_by = JsonValue::Array();
  for (const std::string& attr : query.group_by) {
    group_by.Append(JsonValue::String(attr));
  }
  out.Add("group_by", std::move(group_by));
  return out;
}

Result<GroupByQuery> GroupByQueryFromJsonValue(const JsonValue& value) {
  SCORPION_ASSIGN_OR_RETURN(JsonObjectReader reader,
                            JsonObjectReader::Make(value, "group_by_query"));
  GroupByQuery query;
  SCORPION_ASSIGN_OR_RETURN(query.aggregate, reader.GetString("aggregate"));
  SCORPION_ASSIGN_OR_RETURN(query.agg_attr, reader.GetString("agg_attr"));
  SCORPION_ASSIGN_OR_RETURN(const JsonValue* group_by,
                            reader.GetArray("group_by"));
  SCORPION_ASSIGN_OR_RETURN(query.group_by,
                            StringArray(group_by, "group_by_query group_by"));
  SCORPION_RETURN_NOT_OK(reader.Finish());
  return query;
}

// --- ExplainRequest ----------------------------------------------------------

std::string ExplainRequest::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Add("version", JsonValue::Number(static_cast<double>(kWireVersion)));
  JsonValue outliers = JsonValue::Array();
  for (const OutlierFlag& flag : outliers_) {
    JsonValue o = JsonValue::Object();
    o.Add("key", JsonValue::String(flag.key));
    o.Add("error", JsonValue::Number(flag.error));
    outliers.Append(std::move(o));
  }
  out.Add("outliers", std::move(outliers));
  JsonValue holdouts = JsonValue::Array();
  for (const std::string& key : holdouts_) {
    holdouts.Append(JsonValue::String(key));
  }
  out.Add("holdouts", std::move(holdouts));
  JsonValue attrs = JsonValue::Array();
  for (const std::string& attr : attributes_) {
    attrs.Append(JsonValue::String(attr));
  }
  out.Add("attributes", std::move(attrs));
  out.Add("algorithm", JsonValue::String(AlgorithmToString(algorithm_)));
  out.Add("c", JsonValue::Number(c_));
  out.Add("lambda", JsonValue::Number(lambda_));
  out.Add("influence_mode",
          JsonValue::String(InfluenceModeToString(influence_mode_)));
  out.Add("top_k", JsonValue::Number(static_cast<double>(top_k_)));
  out.Add("what_if", JsonValue::Bool(what_if_));
  out.Add("priority", JsonValue::Number(static_cast<double>(priority_)));
  if (deadline_seconds_.has_value()) {
    out.Add("deadline_seconds", JsonValue::Number(*deadline_seconds_));
  }
  return out.Dump();
}

Result<ExplainRequest> ExplainRequest::FromJson(const std::string& json) {
  SCORPION_ASSIGN_OR_RETURN(JsonValue value, JsonValue::Parse(json));
  SCORPION_ASSIGN_OR_RETURN(JsonObjectReader reader,
                            JsonObjectReader::Make(value, "explain_request"));
  SCORPION_ASSIGN_OR_RETURN(int64_t version, reader.GetInt("version"));
  if (version != kWireVersion) {
    return reader.Error("unsupported version " + std::to_string(version));
  }

  ExplainRequest request;
  SCORPION_ASSIGN_OR_RETURN(const JsonValue* outliers,
                            reader.GetArray("outliers"));
  for (const JsonValue& item : outliers->items()) {
    SCORPION_ASSIGN_OR_RETURN(
        JsonObjectReader flag_reader,
        JsonObjectReader::Make(item, "explain_request outlier"));
    OutlierFlag flag;
    SCORPION_ASSIGN_OR_RETURN(flag.key, flag_reader.GetString("key"));
    SCORPION_ASSIGN_OR_RETURN(flag.error, flag_reader.GetDouble("error"));
    SCORPION_RETURN_NOT_OK(flag_reader.Finish());
    request.Flag(std::move(flag.key), flag.error);
  }
  SCORPION_ASSIGN_OR_RETURN(const JsonValue* holdouts,
                            reader.GetArray("holdouts"));
  SCORPION_ASSIGN_OR_RETURN(
      request.holdouts_, StringArray(holdouts, "explain_request holdouts"));
  SCORPION_ASSIGN_OR_RETURN(const JsonValue* attrs,
                            reader.GetArray("attributes"));
  SCORPION_ASSIGN_OR_RETURN(
      request.attributes_,
      StringArray(attrs, "explain_request attributes"));
  SCORPION_ASSIGN_OR_RETURN(std::string algorithm,
                            reader.GetString("algorithm"));
  SCORPION_ASSIGN_OR_RETURN(request.algorithm_,
                            AlgorithmFromString(algorithm));
  SCORPION_ASSIGN_OR_RETURN(request.c_, reader.GetDouble("c"));
  SCORPION_ASSIGN_OR_RETURN(request.lambda_, reader.GetDouble("lambda"));
  SCORPION_ASSIGN_OR_RETURN(std::string mode,
                            reader.GetString("influence_mode"));
  SCORPION_ASSIGN_OR_RETURN(request.influence_mode_,
                            InfluenceModeFromString(mode));
  SCORPION_ASSIGN_OR_RETURN(int64_t top_k, reader.GetInt("top_k"));
  if (top_k < 0) return reader.Error("top_k must be non-negative");
  request.top_k_ = static_cast<size_t>(top_k);
  SCORPION_ASSIGN_OR_RETURN(request.what_if_, reader.GetBool("what_if"));
  SCORPION_ASSIGN_OR_RETURN(int64_t priority, reader.GetInt("priority"));
  request.priority_ = static_cast<int>(priority);
  if (reader.Has("deadline_seconds")) {
    SCORPION_ASSIGN_OR_RETURN(double deadline,
                              reader.GetDouble("deadline_seconds"));
    request.deadline_seconds_ = deadline;
  }
  SCORPION_RETURN_NOT_OK(reader.Finish());
  SCORPION_RETURN_NOT_OK(request.Validate());
  return request;
}

// --- ExplainResponse ---------------------------------------------------------

namespace {

JsonValue RankedPredicateToJson(const RankedPredicate& rp) {
  JsonValue out = JsonValue::Object();
  out.Add("predicate", PredicateToJsonValue(rp.pred));
  out.Add("influence", ScoreToJson(rp.influence));
  out.Add("display", JsonValue::String(rp.display));
  return out;
}

Result<RankedPredicate> RankedPredicateFromJson(const JsonValue& value) {
  SCORPION_ASSIGN_OR_RETURN(
      JsonObjectReader reader,
      JsonObjectReader::Make(value, "response predicate"));
  RankedPredicate rp;
  SCORPION_ASSIGN_OR_RETURN(const JsonValue* pred,
                            reader.GetMember("predicate"));
  SCORPION_ASSIGN_OR_RETURN(rp.pred, PredicateFromJsonValue(*pred));
  SCORPION_ASSIGN_OR_RETURN(const JsonValue* influence,
                            reader.GetMember("influence"));
  SCORPION_ASSIGN_OR_RETURN(rp.influence,
                            ScoreFromJson(*influence, "response influence"));
  SCORPION_ASSIGN_OR_RETURN(rp.display, reader.GetString("display"));
  SCORPION_RETURN_NOT_OK(reader.Finish());
  return rp;
}

}  // namespace

std::string ExplainResponse::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Add("version", JsonValue::Number(static_cast<double>(kWireVersion)));
  out.Add("algorithm", JsonValue::String(AlgorithmToString(algorithm)));
  JsonValue preds = JsonValue::Array();
  for (const RankedPredicate& rp : predicates) {
    preds.Append(RankedPredicateToJson(rp));
  }
  out.Add("predicates", std::move(preds));
  JsonValue entries = JsonValue::Array();
  for (const WhatIfEntry& entry : what_if) {
    JsonValue e = JsonValue::Object();
    e.Add("key", JsonValue::String(entry.key));
    // Sentinel encoding: `updated` is NaN when the winning predicate
    // annihilates a group whose aggregate is undefined on the empty bag.
    e.Add("original", ScoreToJson(entry.original));
    e.Add("updated", ScoreToJson(entry.updated));
    e.Add("tuples_removed",
          JsonValue::Number(static_cast<double>(entry.tuples_removed)));
    e.Add("is_outlier", JsonValue::Bool(entry.is_outlier));
    e.Add("is_holdout", JsonValue::Bool(entry.is_holdout));
    entries.Append(std::move(e));
  }
  out.Add("what_if", std::move(entries));
  JsonValue cps = JsonValue::Array();
  for (const CheckpointEntry& cp : checkpoints) {
    JsonValue c = JsonValue::Object();
    c.Add("elapsed_seconds", JsonValue::Number(cp.elapsed_seconds));
    c.Add("influence", ScoreToJson(cp.influence));
    c.Add("predicate", PredicateToJsonValue(cp.pred));
    cps.Append(std::move(c));
  }
  out.Add("checkpoints", std::move(cps));
  out.Add("naive_exhausted", JsonValue::Bool(naive_exhausted));
  JsonValue s = JsonValue::Object();
  s.Add("runtime_seconds", JsonValue::Number(stats.runtime_seconds));
  s.Add("cache_partitions_hit", JsonValue::Bool(stats.cache_partitions_hit));
  s.Add("cache_result_hit", JsonValue::Bool(stats.cache_result_hit));
  s.Add("predicate_scores",
        JsonValue::Number(static_cast<double>(stats.predicate_scores)));
  s.Add("group_deltas",
        JsonValue::Number(static_cast<double>(stats.group_deltas)));
  s.Add("tuple_scores",
        JsonValue::Number(static_cast<double>(stats.tuple_scores)));
  s.Add("rows_filtered",
        JsonValue::Number(static_cast<double>(stats.rows_filtered)));
  s.Add("match_cache_hits",
        JsonValue::Number(static_cast<double>(stats.match_cache_hits)));
  out.Add("stats", std::move(s));
  return out.Dump();
}

Result<ExplainResponse> ExplainResponse::FromJson(const std::string& json) {
  SCORPION_ASSIGN_OR_RETURN(JsonValue value, JsonValue::Parse(json));
  SCORPION_ASSIGN_OR_RETURN(
      JsonObjectReader reader,
      JsonObjectReader::Make(value, "explain_response"));
  SCORPION_ASSIGN_OR_RETURN(int64_t version, reader.GetInt("version"));
  if (version != kWireVersion) {
    return reader.Error("unsupported version " + std::to_string(version));
  }

  ExplainResponse response;
  SCORPION_ASSIGN_OR_RETURN(std::string algorithm,
                            reader.GetString("algorithm"));
  SCORPION_ASSIGN_OR_RETURN(response.algorithm,
                            AlgorithmFromString(algorithm));
  SCORPION_ASSIGN_OR_RETURN(const JsonValue* preds,
                            reader.GetArray("predicates"));
  for (const JsonValue& item : preds->items()) {
    SCORPION_ASSIGN_OR_RETURN(RankedPredicate rp,
                              RankedPredicateFromJson(item));
    response.predicates.push_back(std::move(rp));
  }
  SCORPION_ASSIGN_OR_RETURN(const JsonValue* entries,
                            reader.GetArray("what_if"));
  for (const JsonValue& item : entries->items()) {
    SCORPION_ASSIGN_OR_RETURN(
        JsonObjectReader entry_reader,
        JsonObjectReader::Make(item, "response what_if entry"));
    WhatIfEntry entry;
    SCORPION_ASSIGN_OR_RETURN(entry.key, entry_reader.GetString("key"));
    SCORPION_ASSIGN_OR_RETURN(const JsonValue* original,
                              entry_reader.GetMember("original"));
    SCORPION_ASSIGN_OR_RETURN(
        entry.original, ScoreFromJson(*original, "what_if original"));
    SCORPION_ASSIGN_OR_RETURN(const JsonValue* updated,
                              entry_reader.GetMember("updated"));
    SCORPION_ASSIGN_OR_RETURN(entry.updated,
                              ScoreFromJson(*updated, "what_if updated"));
    SCORPION_ASSIGN_OR_RETURN(double removed,
                              entry_reader.GetDouble("tuples_removed"));
    SCORPION_ASSIGN_OR_RETURN(
        entry.tuples_removed,
        CountFromDouble(removed, "response tuples_removed"));
    SCORPION_ASSIGN_OR_RETURN(entry.is_outlier,
                              entry_reader.GetBool("is_outlier"));
    SCORPION_ASSIGN_OR_RETURN(entry.is_holdout,
                              entry_reader.GetBool("is_holdout"));
    SCORPION_RETURN_NOT_OK(entry_reader.Finish());
    response.what_if.push_back(std::move(entry));
  }
  SCORPION_ASSIGN_OR_RETURN(const JsonValue* cps,
                            reader.GetArray("checkpoints"));
  for (const JsonValue& item : cps->items()) {
    SCORPION_ASSIGN_OR_RETURN(
        JsonObjectReader cp_reader,
        JsonObjectReader::Make(item, "response checkpoint"));
    CheckpointEntry cp;
    SCORPION_ASSIGN_OR_RETURN(cp.elapsed_seconds,
                              cp_reader.GetDouble("elapsed_seconds"));
    SCORPION_ASSIGN_OR_RETURN(const JsonValue* influence,
                              cp_reader.GetMember("influence"));
    SCORPION_ASSIGN_OR_RETURN(
        cp.influence, ScoreFromJson(*influence, "checkpoint influence"));
    SCORPION_ASSIGN_OR_RETURN(const JsonValue* pred,
                              cp_reader.GetMember("predicate"));
    SCORPION_ASSIGN_OR_RETURN(cp.pred, PredicateFromJsonValue(*pred));
    SCORPION_RETURN_NOT_OK(cp_reader.Finish());
    response.checkpoints.push_back(std::move(cp));
  }
  SCORPION_ASSIGN_OR_RETURN(response.naive_exhausted,
                            reader.GetBool("naive_exhausted"));
  SCORPION_ASSIGN_OR_RETURN(const JsonValue* stats,
                            reader.GetObject("stats"));
  SCORPION_ASSIGN_OR_RETURN(JsonObjectReader stats_reader,
                            JsonObjectReader::Make(*stats, "response stats"));
  SCORPION_ASSIGN_OR_RETURN(response.stats.runtime_seconds,
                            stats_reader.GetDouble("runtime_seconds"));
  SCORPION_ASSIGN_OR_RETURN(response.stats.cache_partitions_hit,
                            stats_reader.GetBool("cache_partitions_hit"));
  SCORPION_ASSIGN_OR_RETURN(response.stats.cache_result_hit,
                            stats_reader.GetBool("cache_result_hit"));
  struct CounterField {
    const char* key;
    uint64_t* slot;
  };
  CounterField counters[] = {
      {"predicate_scores", &response.stats.predicate_scores},
      {"group_deltas", &response.stats.group_deltas},
      {"tuple_scores", &response.stats.tuple_scores},
      {"rows_filtered", &response.stats.rows_filtered},
      {"match_cache_hits", &response.stats.match_cache_hits},
  };
  for (const CounterField& field : counters) {
    SCORPION_ASSIGN_OR_RETURN(double raw, stats_reader.GetDouble(field.key));
    SCORPION_ASSIGN_OR_RETURN(*field.slot,
                              CountFromDouble(raw, field.key));
  }
  SCORPION_RETURN_NOT_OK(stats_reader.Finish());
  SCORPION_RETURN_NOT_OK(reader.Finish());
  return response;
}

}  // namespace scorpion
